(** The analysis service: admission → cache → micro-batch → solve → respond.

    A service owns an {!Engine} (PAG, jmp store, scheduling plan), a
    {!Cache}, an {!Admission} queue and a {!Batcher} policy, and turns a
    stream of {!Protocol} requests into responses:

    + {!submit} answers [ping]/[stats] immediately and resolves a query's
      variable. With the {b oracle tier} enabled, a budget-free,
      deadline-free query against a live {!Parcfl_oracle.Oracle} is
      answered right here — O(1), before the cache, without entering the
      pipeline at all; refined requests fall through. Otherwise it computes
      the request's {e effective budget} (the request's own cap, the
      wall-clock deadline translated through the engine's observed
      traversal rate, and the service maximum — whichever is smallest),
      then consults the cache. A hit responds immediately; a miss enters
      the admission queue or is {e rejected} with backpressure when full.
    + {!pump} forms a micro-batch when the {!Batcher} says one is due
      (or when forced during drain): expired-deadline requests are answered
      [Timeout] without solving, duplicate in-batch queries are coalesced
      into one solve, and the batch runs on the engine's domain pool with
      the scheduler's direct-grouping + CD/DD order.
    + Completed solves are answered, cached for later identical requests,
      and checked against each request's own budget and deadline — a query
      whose deadline passed or whose budget the solve exceeded reports
      [Timeout], never a fabricated answer.

    Every admitted request carries a {!Span} stamped at admit →
    batch-formed → schedule-ordered → solve-start → solve-end → respond;
    its breakdown rides on the response, feeds the per-stage histograms
    ([parcfl_stage_seconds]) and the slowlog, and — when the service has a
    tracer — becomes a span on the Chrome trace's service lane. A
    {!Watchdog} turns per-worker last-progress heartbeats and the oldest
    admitted request's age into the [health] verb's verdict and the
    [parcfl_svc_healthy] gauge.

    The service is driven from one front-end thread ({!Server}'s event
    loop or a test harness); the parallelism lives inside the engine's
    batch execution. Responses are delivered through the callback given at
    submission, always from within {!submit}/{!pump}/{!drain}. *)

type config = {
  threads : int;  (** engine domain pool size *)
  mode : Parcfl_par.Mode.t;
  max_batch : int;
  max_wait : float;  (** micro-batch window, seconds *)
  queue_capacity : int;  (** admission bound; beyond it requests are rejected *)
  cache_capacity : int;
  max_budget : int;  (** service-wide per-query step-budget ceiling *)
  context_sensitive : bool;
      (** solver context sensitivity; [false] runs the Andersen-equivalent
          context-insensitive engine *)
  preseed : bool;
      (** warm-start: run the whole-program bitset kernel at {!create} and
          install its facts as Finished jmp edges before any traffic (see
          {!Engine.preseed}) *)
  oracle : bool;
      (** build the O(1) pair-query oracle at {!create} and answer
          budget-free, deadline-free queries from it before the cache and
          solver (see {!Engine.warm_start}; shares the preseed's kernel
          run). The oracle holds the CI relation, so a [context_sensitive]
          service counts fallbacks instead of building one. *)
  tau_f : int option;
  tau_u : int option;
  slowlog_capacity : int;  (** flight-recorder bound (worst queries kept) *)
  wd_stall_s : float;  (** watchdog: max worker-heartbeat age under demand *)
  wd_starvation_s : float;  (** watchdog: max oldest-admitted wait *)
  witness_bytes : int;
      (** byte budget for the witness/dependency index: per-answer PAG
          edge postings recorded by the [explain] verb, shed LRU-first
          when the budget is exceeded (see {!Parcfl_provenance.Index}) *)
}

val default_config : config
(** 4 threads, [Share_sched], batches of 64 / 10 ms, queue 1024, cache
    4096, budget and context sensitivity {!Parcfl_cfl.Config.default}'s,
    no preseed, no oracle, slowlog 32, watchdog
    {!Watchdog.default_config}'s thresholds, witness index at
    {!Parcfl_provenance.Index.default_byte_budget}. *)

type t

val create :
  ?config:config ->
  ?tracer:Parcfl_obs.Tracer.t ->
  type_level:(int -> int) ->
  Parcfl_pag.Pag.t ->
  t

val config : t -> config
val engine : t -> Engine.t
val queue_depth : t -> int

val in_flight : t -> int
(** Requests inside the currently-executing micro-batch (0 between
    pumps). *)

val metrics : t -> Metrics.t

val watchdog : t -> Watchdog.t
(** The liveness watchdog: fed a heartbeat per worker after every batch
    (from the report's per-worker last-progress stamps). *)

val health : t -> now:float -> Watchdog.verdict
(** The [health] verb's verdict: worker-stall and queue-starvation checks
    against the configured [wd_stall_s]/[wd_starvation_s] thresholds. *)

val inject_stall : t -> now:float -> worker:int -> stalled:bool -> unit
(** Fault injection for drills and tests: pin [worker]'s heartbeat in the
    past (or release it) so {!health} reports degraded deterministically. *)

val slowlog : t -> Slowlog.t
(** The flight recorder; populated by every answered query. *)

val registry : t -> Parcfl_telemetry.Registry.t
(** The telemetry registry with every subsystem's collectors registered
    (service counters, cache, jmp store, scheduler, per-worker busy
    time). Extendable by embedders before serving. *)

val metrics_text : t -> string
(** The full Prometheus text exposition — the [metrics] request payload
    and what the scrape listener serves. *)

val metrics_json : t -> Parcfl_obs.Json.t
(** The [stats] payload: counters, gauges, generation, jmp-store
    hit/miss/record counters, observed traversal rate. *)

val resolve : t -> string -> (Parcfl_pag.Pag.var, string) result
(** ["#<n>"] by id (bounds-checked), otherwise exact-name lookup. *)

val resolve_obj : t -> string -> (Parcfl_pag.Pag.obj, string) result
(** Same resolution for allocation-site (object) names. *)

val witness_index : t -> Parcfl_provenance.Index.t
(** The bounded witness/dependency index: for every answer the [explain]
    verb has re-derived, the sorted PAG edge ids its derivation touched —
    the reverse map an incremental invalidator (ROADMAP item 1) walks from
    a mutated edge to the answers it might change. Populated only by
    [explain]; the hot serve path never writes it. *)

val submit :
  t ->
  now:float ->
  respond:(Protocol.response -> unit) ->
  Protocol.request ->
  unit
(** [respond] fires zero or one time per request: immediately (ping,
    stats, cache hit, rejection, resolution error) or from a later
    {!pump}/{!drain}. [Protocol.Quit] is transport-level and ignored
    here. *)

val due : t -> now:float -> bool
val wait_hint : t -> now:float -> float option

val pump : ?force:bool -> t -> now:float -> int
(** Execute one micro-batch if due ([force] overrides the policy). Returns
    the number of requests answered. *)

val drain : t -> now:float -> unit
(** Graceful shutdown: keep pumping (forced) until the queue is empty —
    every in-flight request gets a real response. *)

val draining : t -> bool
(** Whether a [drain] request has been handled: once set, new queries are
    rejected with reason ["draining"] while stats/health/metrics/snapshot
    keep answering (rolling restarts watch the hand-off this way). *)

val import_snapshot : t -> string -> (int, string) result
(** Warm this service's engine from a [jmpsnap] snapshot exported by a
    peer replica (see {!Engine.import_snapshot}); returns the number of
    Finished records installed. *)

val export_oracle : t -> (string * int, string) result
(** [(text, distinct_rows)]: the live oracle as a generation-tagged
    [oraclesnap] text (see {!Engine.export_oracle}). Errors when no live
    oracle is installed. *)

val import_oracle : t -> string -> (int, string) result
(** Install a peer's oracle snapshot and {e arm the tier} — a service
    started without [config.oracle] begins answering from the oracle after
    a successful import (cluster joiners warm up this way). Same
    generation/CS rejection rules as {!Engine.import_oracle}. *)

val shutdown : t -> unit
(** Join the engine's persistent worker domains (see {!Engine.shutdown}).
    Call after the final {!drain} when discarding a service; idempotent,
    and a later pump would transparently respawn the pool. *)
