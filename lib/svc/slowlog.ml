module Json = Parcfl_obs.Json

type entry = {
  sl_id : int;
  sl_var : string;
  sl_budget : int;
  sl_steps : int;
  sl_latency_us : float;
  sl_breakdown : Span.breakdown;
  sl_outcome : string;
  sl_cached : bool;
  sl_trace : int option;
  sl_at : float;
}

type t = {
  cap : int;
  lock : Mutex.t;
  mutable entries : entry list;  (* unordered; bounded by [cap] *)
}

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Svc.Slowlog.create: capacity must be > 0";
  { cap = capacity; lock = Mutex.create (); entries = [] }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let size t = locked t (fun () -> List.length t.entries)

(* Slowest first; among equal latencies the more recent entry sorts first
   so a fresh regression is visible even when it ties an old one. *)
let order a b =
  let c = compare b.sl_latency_us a.sl_latency_us in
  if c <> 0 then c else compare b.sl_at a.sl_at

let note t e =
  locked t (fun () ->
      if List.length t.entries < t.cap then t.entries <- e :: t.entries
      else begin
        (* Full: replace the fastest resident iff the newcomer is slower. *)
        let fastest =
          List.fold_left
            (fun acc x -> if order x acc >= 0 then x else acc)
            (List.hd t.entries) t.entries
        in
        if order e fastest < 0 then
          t.entries <-
            e :: List.filter (fun x -> x != fastest) t.entries
      end)

let worst ?limit t =
  let sorted = locked t (fun () -> List.sort order t.entries) in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

let entry_to_json e =
  Json.Obj
    ([
       ("id", Json.Int e.sl_id);
       ("var", Json.String e.sl_var);
       ("budget", Json.Int e.sl_budget);
       ("steps", Json.Int e.sl_steps);
       ("latency_us", Json.Float e.sl_latency_us);
     ]
    @ Span.breakdown_fields e.sl_breakdown
    @ [
        ("outcome", Json.String e.sl_outcome);
        ("cached", Json.Bool e.sl_cached);
      ]
    @ (match e.sl_trace with
      | Some tid -> [ ("trace", Json.Int tid) ]
      | None -> [])
    @ [ ("at", Json.Float e.sl_at) ])

let to_json ?limit t = Json.List (List.map entry_to_json (worst ?limit t))

let clear t = locked t (fun () -> t.entries <- [])
