(** The slow-query flight recorder.

    A bounded record of the worst queries the service has answered, by
    service latency. Every completed (or timed-out) query is offered via
    {!note}; only the [capacity] slowest survive — a new entry evicts the
    current fastest once the recorder is full. The point is forensic: when
    tail latency spikes, [slowlog] answers {e which} variables, at what
    budget, with what cache/jmp outcome, without tracing every request.

    Thread-safe (a single mutex — [note] runs once per query, far off the
    solver's hot path). *)

type entry = {
  sl_id : int;  (** client request id *)
  sl_var : string;  (** variable name as resolved in the PAG *)
  sl_budget : int;  (** effective step budget the query ran under *)
  sl_steps : int;  (** budget consumed *)
  sl_latency_us : float;  (** admission-to-answer wall latency *)
  sl_breakdown : Span.breakdown;
      (** where the latency went (all-zero for cache hits, which never
          enter the pipeline) *)
  sl_outcome : string;  (** ["ok"], ["timeout_budget"], ["timeout_deadline"] *)
  sl_cached : bool;  (** answered from the result cache *)
  sl_trace : int option;
      (** the client's [trace=] request id when a proxy (the cluster
          router) rewrote [sl_id] — lets a flight-recorder row be joined
          against the Chrome trace lanes, which speak the client's id *)
  sl_at : float;  (** completion time, epoch seconds *)
}

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int

val size : t -> int
(** Entries currently held ([<= capacity]). *)

val note : t -> entry -> unit
(** Offer a query. Kept iff the recorder has a free slot or the entry is
    slower than the current fastest resident (which it then replaces). *)

val worst : ?limit:int -> t -> entry list
(** Slowest first; ties broken by recency (newer first). [limit] truncates. *)

val to_json : ?limit:int -> t -> Parcfl_obs.Json.t
(** [worst] as a JSON list of objects with the [sl_*] fields (sans
    prefix). *)

val clear : t -> unit
