type t = {
  mutable sp_admit_us : float;
  mutable sp_batch_us : float;
  mutable sp_sched_us : float;
  mutable sp_solve_start_us : float;
  mutable sp_solve_end_us : float;
  mutable sp_respond_us : float;
}

type breakdown = {
  bd_queue_wait_us : float;
  bd_batch_wait_us : float;
  bd_solve_us : float;
  bd_respond_us : float;
}

let create ~admit_us =
  {
    sp_admit_us = admit_us;
    sp_batch_us = admit_us;
    sp_sched_us = admit_us;
    sp_solve_start_us = admit_us;
    sp_solve_end_us = admit_us;
    sp_respond_us = admit_us;
  }

let stamp_batch t ~us = t.sp_batch_us <- us
let stamp_sched t ~us = t.sp_sched_us <- us

let stamp_solve t ~start_us ~end_us =
  t.sp_solve_start_us <- start_us;
  t.sp_solve_end_us <- end_us

let stamp_respond t ~us = t.sp_respond_us <- us

(* Consecutive stamp differences, clamped at zero so a mixed clock (tests
   drive submit/pump with a logical [now] while solve stamps are wall
   clock) can never produce a negative stage. When the stamps are monotone
   — every real-clock run — the four stages telescope to exactly
   [sp_respond_us - sp_admit_us]. *)
let breakdown t =
  let stage a b = Float.max 0.0 (b -. a) in
  {
    bd_queue_wait_us = stage t.sp_admit_us t.sp_batch_us;
    bd_batch_wait_us = stage t.sp_batch_us t.sp_solve_start_us;
    bd_solve_us = stage t.sp_solve_start_us t.sp_solve_end_us;
    bd_respond_us = stage t.sp_solve_end_us t.sp_respond_us;
  }

let total_us bd =
  bd.bd_queue_wait_us +. bd.bd_batch_wait_us +. bd.bd_solve_us
  +. bd.bd_respond_us

let zero =
  {
    bd_queue_wait_us = 0.0;
    bd_batch_wait_us = 0.0;
    bd_solve_us = 0.0;
    bd_respond_us = 0.0;
  }

let stage_names = [ "queue"; "batch"; "solve"; "respond" ]

let stage_values bd =
  [
    bd.bd_queue_wait_us; bd.bd_batch_wait_us; bd.bd_solve_us;
    bd.bd_respond_us;
  ]

let breakdown_fields bd =
  let module Json = Parcfl_obs.Json in
  [
    ("queue_wait_us", Json.Float bd.bd_queue_wait_us);
    ("batch_wait_us", Json.Float bd.bd_batch_wait_us);
    ("solve_us", Json.Float bd.bd_solve_us);
    ("respond_us", Json.Float bd.bd_respond_us);
  ]
