(** Request-lifecycle spans: one record per admitted query, stamped at
    the six points a request crosses on its way through the service —

    {v admit → batch-formed → schedule-ordered → solve-start → solve-end → respond v}

    All stamps are microseconds on the clock the service is driven with
    (wall-clock epoch in a real server; a logical clock in deterministic
    tests). The solve stamps reuse {!Parcfl_par.Report.query_stat}'s
    [qs_start_us]/[qs_end_us] convention, so the span costs no extra clock
    reads on the solver's hot path.

    A finished span collapses into a {!breakdown} — the four stage
    durations every [Answer]/[Timeout] response, slowlog entry and
    per-stage histogram reports. *)

type t = {
  mutable sp_admit_us : float;  (** admitted into the queue *)
  mutable sp_batch_us : float;  (** taken into a micro-batch *)
  mutable sp_sched_us : float;  (** batch coalesced + handed to the engine *)
  mutable sp_solve_start_us : float;  (** solver began this query *)
  mutable sp_solve_end_us : float;  (** solver decided the outcome *)
  mutable sp_respond_us : float;  (** response delivered to the client *)
}

type breakdown = {
  bd_queue_wait_us : float;  (** admit → batch-formed *)
  bd_batch_wait_us : float;  (** batch-formed → solve-start *)
  bd_solve_us : float;  (** solve-start → solve-end *)
  bd_respond_us : float;  (** solve-end → respond *)
}

val create : admit_us:float -> t
(** Every later stamp is initialised to [admit_us], so an unstamped stage
    reads as zero duration (a request timed out before solving reports
    [bd_solve_us = 0]). *)

val stamp_batch : t -> us:float -> unit
val stamp_sched : t -> us:float -> unit
val stamp_solve : t -> start_us:float -> end_us:float -> unit
val stamp_respond : t -> us:float -> unit

val breakdown : t -> breakdown
(** Consecutive stamp differences, each clamped at [>= 0]. With monotone
    stamps the stages telescope: their sum is exactly
    [sp_respond_us -. sp_admit_us]. *)

val total_us : breakdown -> float
(** Sum of the four stages. *)

val zero : breakdown
(** The all-zero breakdown (cache hits never enter the pipeline). *)

val stage_names : string list
(** [["queue"; "batch"; "solve"; "respond"]] — label values of the
    [parcfl_stage_seconds] exposition family, in {!stage_values} order. *)

val stage_values : breakdown -> float list
(** The four stage durations in {!stage_names} order. *)

val breakdown_fields : breakdown -> (string * Parcfl_obs.Json.t) list
(** The wire fields ([queue_wait_us], [batch_wait_us], [solve_us],
    [respond_us]) shared by responses and slowlog entries. *)
