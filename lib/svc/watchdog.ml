type config = { wd_stall_s : float; wd_starvation_s : float }

let default_config = { wd_stall_s = 5.0; wd_starvation_s = 1.0 }

type t = {
  cfg : config;
  last_beat : float array;  (* per worker, seconds on the service clock *)
  injected : bool array;  (* fault-injection: worker's beats are ignored *)
}

let create ?(config = default_config) ~workers ~now () =
  if workers < 1 then invalid_arg "Svc.Watchdog.create: workers must be >= 1";
  if config.wd_stall_s <= 0.0 || config.wd_starvation_s <= 0.0 then
    invalid_arg "Svc.Watchdog.create: thresholds must be > 0";
  {
    cfg = config;
    last_beat = Array.make workers now;
    injected = Array.make workers false;
  }

let config t = t.cfg
let workers t = Array.length t.last_beat
let last_beat t w = t.last_beat.(w)

let beat t ~now ~worker =
  if worker >= 0 && worker < Array.length t.last_beat
     && not t.injected.(worker)
  then t.last_beat.(worker) <- Float.max t.last_beat.(worker) now

(* A joined batch proves every worker alive; workers that executed queries
   additionally carry their real last-completion stamp (epoch µs from the
   runner), idle workers beat with the batch end. *)
let observe_batch ?last_progress_us t ~now =
  Array.iteri
    (fun w _ ->
      let stamp =
        match last_progress_us with
        | Some a when w < Array.length a && a.(w) > 0.0 ->
            Float.min now (a.(w) /. 1e6)
        | _ -> now
      in
      beat t ~now:stamp ~worker:w)
    t.last_beat

let inject_stall t ~now ~worker ~stalled =
  if worker >= 0 && worker < Array.length t.last_beat then
    if stalled then begin
      t.injected.(worker) <- true;
      (* Backdate past the threshold so the degraded verdict flows through
         the same age arithmetic as a real stall — the injection exercises
         the detector, it does not bypass it. *)
      t.last_beat.(worker) <-
        Float.min t.last_beat.(worker) (now -. t.cfg.wd_stall_s -. 1.0)
    end
    else begin
      t.injected.(worker) <- false;
      t.last_beat.(worker) <- now
    end

let injected t =
  let out = ref [] in
  for w = Array.length t.injected - 1 downto 0 do
    if t.injected.(w) then out := w :: !out
  done;
  !out

type verdict = { wd_healthy : bool; wd_reasons : string list }

(* A quiet service is healthy no matter how stale the beats: workers only
   owe progress while there is demand. An injected stall owes progress
   unconditionally — that is the point of the injection. *)
let check t ~now ~oldest_admitted =
  let demand = oldest_admitted <> None in
  let reasons = ref [] in
  (match oldest_admitted with
  | Some arrival when now -. arrival > t.cfg.wd_starvation_s ->
      reasons :=
        [
          Printf.sprintf "queue starved: oldest admitted waiting %.1fs \
                          (threshold %.1fs)"
            (now -. arrival) t.cfg.wd_starvation_s;
        ]
  | _ -> ());
  for w = Array.length t.last_beat - 1 downto 0 do
    let age = now -. t.last_beat.(w) in
    if age > t.cfg.wd_stall_s && (t.injected.(w) || demand) then
      reasons :=
        Printf.sprintf "worker %d stalled: no progress for %.1fs \
                        (threshold %.1fs)"
          w age t.cfg.wd_stall_s
        :: !reasons
  done;
  { wd_healthy = !reasons = []; wd_reasons = !reasons }
