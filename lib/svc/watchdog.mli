(** Liveness watchdog: is the service making progress?

    Two checks, both pure arithmetic over timestamps the service already
    has — the watchdog adds no clock reads to the solve path:

    - {b worker stall}: each engine worker carries a last-progress
      heartbeat, refreshed when a batch completes (workers that executed
      queries beat with their real last solve-end stamp, idle workers with
      the batch end). A worker whose beat is older than [wd_stall_s] while
      there is demand (a non-empty admission queue) is reported stalled.
    - {b queue starvation}: the oldest admitted request waiting longer
      than [wd_starvation_s] means batches are not being formed or are not
      keeping up.

    A quiet service (empty queue, no injection) is healthy no matter how
    old its beats are — workers only owe progress while there is demand.

    {!inject_stall} is the fault-injection hook: it backdates a worker's
    heartbeat past the threshold and freezes it, so the degraded verdict
    flows through the same age arithmetic as a real stall. The [health]
    protocol verb and the [parcfl_svc_healthy] gauge surface {!check}'s
    verdict. *)

type config = {
  wd_stall_s : float;  (** max heartbeat age under demand, seconds *)
  wd_starvation_s : float;  (** max oldest-admitted wait, seconds *)
}

val default_config : config
(** 5 s stall, 1 s starvation — an order of magnitude above any healthy
    micro-batch window, see DESIGN.md S20. *)

type t

val create : ?config:config -> workers:int -> now:float -> unit -> t
(** All heartbeats start at [now]. @raise Invalid_argument when
    [workers < 1] or a threshold is [<= 0]. *)

val config : t -> config
val workers : t -> int

val last_beat : t -> int -> float
(** Worker's heartbeat, seconds on the service clock. *)

val beat : t -> now:float -> worker:int -> unit
(** Refresh one heartbeat (monotone: an older stamp never rewinds it).
    Ignored for out-of-range workers and while a stall is injected. *)

val observe_batch : ?last_progress_us:float array -> t -> now:float -> unit
(** Heartbeat every worker after a batch joined: with
    [last_progress_us.(w) > 0] (epoch microseconds, the runner's
    per-worker last solve-end) the worker beats at that stamp, otherwise
    at [now]. *)

val inject_stall : t -> now:float -> worker:int -> stalled:bool -> unit
(** Fault injection. [stalled:true] backdates the worker's heartbeat past
    [wd_stall_s] and suppresses further beats; [stalled:false] lifts the
    injection and beats the worker at [now] (health recovers). *)

val injected : t -> int list
(** Workers with an active injected stall, ascending. *)

type verdict = { wd_healthy : bool; wd_reasons : string list }

val check : t -> now:float -> oldest_admitted:float option -> verdict
(** [oldest_admitted] is the arrival time of the queue's head request (or
    [None] when empty). Healthy iff no reason fires; reasons name the
    stalled workers and/or the starved queue with their observed ages. *)
