type sample = { labels : (string * string) list; value : float }

type hist = {
  h_labels : (string * string) list;
  h_buckets : (float * int) list;
  h_count : int;
  h_sum : float option;
}

type family =
  | Counter of { name : string; help : string; samples : sample list }
  | Gauge of { name : string; help : string; samples : sample list }
  | Histogram of { name : string; help : string; series : hist list }

let family_name = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } -> name

let name_char_ok first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || ((not first) && c >= '0' && c <= '9')

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c -> if not (name_char_ok false c) then Bytes.set b i '_')
      b;
    let s = Bytes.to_string b in
    (* A leading digit is prefixed, not replaced: "9lives" stays
       distinguishable from "_lives". *)
    if name_char_ok true s.[0] then s else "_" ^ s
  end

let escape ~quote s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value = escape ~quote:true
let escape_help = escape ~quote:false

(* Prometheus number spelling: integers without a fraction part, the rest
   with enough digits to round-trip, and the spec's spellings for the
   non-finite values. *)
let number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let counter ?(labels = []) ~name ~help v =
  Counter { name; help; samples = [ { labels; value = v } ] }

let gauge ?(labels = []) ~name ~help v =
  Gauge { name; help; samples = [ { labels; value = v } ] }

let cumulative_of_log2 ?(le_scale = 1.0) h =
  let n = Array.length h in
  if n = 0 then [ (Float.infinity, 0) ]
  else begin
    let acc = ref 0 in
    List.init n (fun i ->
        acc := !acc + h.(i);
        let le =
          if i = n - 1 then Float.infinity
          else Float.of_int (1 lsl (i + 1)) *. le_scale
        in
        (le, !acc))
  end

let histogram_of_log2 ?(labels = []) ?sum ?le_scale ~name ~help h =
  let buckets = cumulative_of_log2 ?le_scale h in
  let count = match List.rev buckets with (_, c) :: _ -> c | [] -> 0 in
  Histogram
    {
      name;
      help;
      series =
        [ { h_labels = labels; h_buckets = buckets; h_count = count;
            h_sum = sum } ];
    }

let label_str labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                 (escape_label_value v))
             ls)
      ^ "}"

let sort_samples samples =
  List.sort (fun a b -> compare a.labels b.labels) samples

let render_header buf name help kind =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (escape_help help)
       name kind)

let render_simple buf name kind help samples =
  render_header buf name help kind;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (label_str s.labels)
           (number s.value)))
    (sort_samples samples)

let render_hist buf name help series =
  render_header buf name help "histogram";
  let series =
    List.sort (fun a b -> compare a.h_labels b.h_labels) series
  in
  List.iter
    (fun h ->
      List.iter
        (fun (le, c) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (label_str (h.h_labels @ [ ("le", number le) ]))
               c))
        h.h_buckets;
      (match h.h_sum with
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (label_str h.h_labels)
               (number s))
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" name (label_str h.h_labels)
           h.h_count))
    series

let render families =
  let buf = Buffer.create 4096 in
  let families =
    List.sort
      (fun a b ->
        compare
          (sanitize_name (family_name a))
          (sanitize_name (family_name b)))
      families
  in
  List.iter
    (fun f ->
      let name = sanitize_name (family_name f) in
      match f with
      | Counter { help; samples; _ } ->
          render_simple buf name "counter" help samples
      | Gauge { help; samples; _ } -> render_simple buf name "gauge" help samples
      | Histogram { help; series; _ } -> render_hist buf name help series)
    families;
  Buffer.contents buf
