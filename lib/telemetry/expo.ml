type sample = { labels : (string * string) list; value : float }

type hist = {
  h_labels : (string * string) list;
  h_buckets : (float * int) list;
  h_count : int;
  h_sum : float option;
}

type family =
  | Counter of { name : string; help : string; samples : sample list }
  | Gauge of { name : string; help : string; samples : sample list }
  | Histogram of { name : string; help : string; series : hist list }

let family_name = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } -> name

let name_char_ok first c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || ((not first) && c >= '0' && c <= '9')

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Bytes.of_string s in
    Bytes.iteri
      (fun i c -> if not (name_char_ok false c) then Bytes.set b i '_')
      b;
    let s = Bytes.to_string b in
    (* A leading digit is prefixed, not replaced: "9lives" stays
       distinguishable from "_lives". *)
    if name_char_ok true s.[0] then s else "_" ^ s
  end

let escape ~quote s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value = escape ~quote:true
let escape_help = escape ~quote:false

(* Prometheus number spelling: integers without a fraction part, the rest
   with enough digits to round-trip, and the spec's spellings for the
   non-finite values. *)
let number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let counter ?(labels = []) ~name ~help v =
  Counter { name; help; samples = [ { labels; value = v } ] }

let gauge ?(labels = []) ~name ~help v =
  Gauge { name; help; samples = [ { labels; value = v } ] }

let cumulative_of_log2 ?(le_scale = 1.0) h =
  let n = Array.length h in
  if n = 0 then [ (Float.infinity, 0) ]
  else begin
    let acc = ref 0 in
    List.init n (fun i ->
        acc := !acc + h.(i);
        let le =
          if i = n - 1 then Float.infinity
          else Float.of_int (1 lsl (i + 1)) *. le_scale
        in
        (le, !acc))
  end

let histogram_of_log2 ?(labels = []) ?sum ?le_scale ~name ~help h =
  let buckets = cumulative_of_log2 ?le_scale h in
  let count = match List.rev buckets with (_, c) :: _ -> c | [] -> 0 in
  Histogram
    {
      name;
      help;
      series =
        [ { h_labels = labels; h_buckets = buckets; h_count = count;
            h_sum = sum } ];
    }

let label_str labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k)
                 (escape_label_value v))
             ls)
      ^ "}"

let sort_samples samples =
  List.sort (fun a b -> compare a.labels b.labels) samples

let render_header buf name help kind =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n" name (escape_help help)
       name kind)

let render_simple buf name kind help samples =
  render_header buf name help kind;
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s %s\n" name (label_str s.labels)
           (number s.value)))
    (sort_samples samples)

let render_hist buf name help series =
  render_header buf name help "histogram";
  let series =
    List.sort (fun a b -> compare a.h_labels b.h_labels) series
  in
  List.iter
    (fun h ->
      List.iter
        (fun (le, c) ->
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" name
               (label_str (h.h_labels @ [ ("le", number le) ]))
               c))
        h.h_buckets;
      (match h.h_sum with
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (label_str h.h_labels)
               (number s))
      | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" name (label_str h.h_labels)
           h.h_count))
    series

let render families =
  let buf = Buffer.create 4096 in
  let families =
    List.sort
      (fun a b ->
        compare
          (sanitize_name (family_name a))
          (sanitize_name (family_name b)))
      families
  in
  List.iter
    (fun f ->
      let name = sanitize_name (family_name f) in
      match f with
      | Counter { help; samples; _ } ->
          render_simple buf name "counter" help samples
      | Gauge { help; samples; _ } -> render_simple buf name "gauge" help samples
      | Histogram { help; series; _ } -> render_hist buf name help series)
    families;
  Buffer.contents buf

(* ------------------------------ parsing ------------------------------ *)

(* The inverse of [render], for reading a peer's scrape back so replicas'
   expositions can be merged (the cluster router federates metrics). The
   grammar is exactly what [render] emits — HELP then TYPE then samples,
   histogram series as contiguous bucket/sum/count runs — so a strict
   parser suffices, and render ∘ parse ∘ render = render byte for byte:
   names arrive already sanitised, families and samples arrive already
   sorted, and [number]'s 12-significant-digit spelling re-reads to a
   float whose nearest 12-digit decimal is the original string. *)

let parse_error fmt = Printf.ksprintf (fun s -> Stdlib.Error s) fmt

let unescape ~what s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else
      match s.[i] with
      | '\\' ->
          if i + 1 >= n then parse_error "%s: dangling backslash" what
          else begin
            match s.[i + 1] with
            | '\\' ->
                Buffer.add_char buf '\\';
                go (i + 2)
            | 'n' ->
                Buffer.add_char buf '\n';
                go (i + 2)
            | '"' ->
                Buffer.add_char buf '"';
                go (i + 2)
            | c -> parse_error "%s: unknown escape \\%c" what c
          end
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

let parse_value s =
  match s with
  | "NaN" -> Ok Float.nan
  | "+Inf" -> Ok Float.infinity
  | "-Inf" -> Ok Float.neg_infinity
  | s -> (
      match float_of_string_opt s with
      | Some v when Float.is_finite v -> Ok v
      | _ -> parse_error "bad value %S" s)

(* [name{k="v",...}] — returns (labels, rest after '}'). Escapes inside a
   quoted value are skipped, not interpreted, so the value is cut at its
   real closing quote; [unescape] then decodes it. *)
let parse_labels line start =
  let n = String.length line in
  let rec labels acc i =
    if i >= n then parse_error "unterminated label set"
    else if line.[i] = '}' then Ok (List.rev acc, i + 1)
    else
      match String.index_from_opt line i '=' with
      | None -> parse_error "label without '='"
      | Some eq ->
          let k = String.sub line i (eq - i) in
          if eq + 1 >= n || line.[eq + 1] <> '"' then
            parse_error "label %s: expected opening quote" k
          else
            let rec close j =
              if j >= n then parse_error "label %s: unterminated value" k
              else
                match line.[j] with
                | '\\' -> close (j + 2)
                | '"' -> Ok j
                | _ -> close (j + 1)
            in
            Result.bind (close (eq + 2)) (fun q ->
                Result.bind
                  (unescape ~what:("label " ^ k)
                     (String.sub line (eq + 2) (q - eq - 2)))
                  (fun v ->
                    let i = q + 1 in
                    if i < n && line.[i] = ',' then
                      labels ((k, v) :: acc) (i + 1)
                    else labels ((k, v) :: acc) i))
  in
  labels [] start

(* One sample line: name, optional {labels}, a space, the value token. *)
let parse_sample line =
  let n = String.length line in
  let rec name_end i =
    if i < n && name_char_ok (i = 0) line.[i] then name_end (i + 1) else i
  in
  let e = name_end 0 in
  if e = 0 then parse_error "sample line %S: no metric name" line
  else
    let name = String.sub line 0 e in
    let with_labels =
      if e < n && line.[e] = '{' then parse_labels line (e + 1)
      else Ok ([], e)
    in
    Result.bind with_labels (fun (labels, i) ->
        if i >= n || line.[i] <> ' ' then
          parse_error "sample line %S: expected a value" line
        else
          Result.map
            (fun v -> (name, labels, v))
            (parse_value (String.sub line (i + 1) (n - i - 1))))

(* Histogram reassembly: one series' bucket lines arrive contiguously and
   its [_count] line closes it (exactly how [render_hist] emits). *)
type hist_acc = {
  mutable ha_labels : (string * string) list;
  mutable ha_buckets : (float * int) list;  (* reversed *)
  mutable ha_sum : float option;
  mutable ha_open : bool;
  mutable ha_series : hist list;  (* reversed, completed *)
}

let parse_families text =
  let ( let* ) = Result.bind in
  let finished = ref [] in
  (* The family under construction: name, help, kind, plus its samples or
     histogram accumulator. *)
  let cur = ref None in
  let flush () =
    match !cur with
    | None -> Ok ()
    | Some (name, help, kind, samples, ha) ->
        cur := None;
        if ha.ha_open then
          parse_error "histogram %s: series not closed by a _count line" name
        else
          let fam =
            match kind with
            | "counter" ->
                Ok (Counter { name; help; samples = List.rev !samples })
            | "gauge" -> Ok (Gauge { name; help; samples = List.rev !samples })
            | "histogram" ->
                Ok (Histogram { name; help; series = List.rev ha.ha_series })
            | k -> parse_error "family %s: unknown kind %S" name k
          in
          Result.map (fun f -> finished := f :: !finished) fam
  in
  let strip_suffix suffix s =
    let ls = String.length suffix and ln = String.length s in
    if ln >= ls && String.sub s (ln - ls) ls = suffix then
      Some (String.sub s 0 (ln - ls))
    else None
  in
  let feed_hist fname ha name labels value =
    let close_open series_labels =
      if ha.ha_open && ha.ha_labels <> series_labels then
        parse_error "histogram %s: interleaved series" fname
      else Ok ()
    in
    match strip_suffix "_bucket" name with
    | Some base when base = fname -> (
        match List.partition (fun (k, _) -> k = "le") labels with
        | [ (_, le) ], rest ->
            let* le = parse_value le in
            let* () = close_open rest in
            ha.ha_labels <- rest;
            ha.ha_open <- true;
            ha.ha_buckets <- (le, int_of_float value) :: ha.ha_buckets;
            Ok ()
        | _ -> parse_error "histogram %s: bucket without one le label" fname)
    | _ -> (
        match strip_suffix "_sum" name with
        | Some base when base = fname ->
            let* () = close_open labels in
            ha.ha_sum <- Some value;
            Ok ()
        | _ -> (
            match strip_suffix "_count" name with
            | Some base when base = fname ->
                let* () = close_open labels in
                ha.ha_series <-
                  {
                    h_labels = labels;
                    h_buckets = List.rev ha.ha_buckets;
                    h_count = int_of_float value;
                    h_sum = ha.ha_sum;
                  }
                  :: ha.ha_series;
                ha.ha_labels <- [];
                ha.ha_buckets <- [];
                ha.ha_sum <- None;
                ha.ha_open <- false;
                Ok ()
            | _ ->
                parse_error "histogram %s: stray sample %s" fname name))
  in
  let feed_line line =
    if line = "" then Ok ()
    else if String.length line >= 7 && String.sub line 0 7 = "# HELP " then
      (* A HELP line opens the next family; flush the previous one. *)
      let* () = flush () in
      let rest = String.sub line 7 (String.length line - 7) in
      match String.index_opt rest ' ' with
      | None -> parse_error "HELP line %S: missing help text" line
      | Some sp ->
          let name = String.sub rest 0 sp in
          let* help =
            unescape ~what:("help of " ^ name)
              (String.sub rest (sp + 1) (String.length rest - sp - 1))
          in
          cur :=
            Some
              ( name,
                help,
                "",
                ref [],
                {
                  ha_labels = [];
                  ha_buckets = [];
                  ha_sum = None;
                  ha_open = false;
                  ha_series = [];
                } );
          Ok ()
    else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then
      match !cur with
      | Some (name, help, "", samples, ha) -> (
          let rest = String.sub line 7 (String.length line - 7) in
          match String.split_on_char ' ' rest with
          | [ n; kind ] when n = name ->
              if kind = "counter" || kind = "gauge" || kind = "histogram"
              then begin
                cur := Some (name, help, kind, samples, ha);
                Ok ()
              end
              else parse_error "family %s: unknown kind %S" name kind
          | [ n; _ ] -> parse_error "TYPE for %s under HELP for %s" n name
          | _ -> parse_error "malformed TYPE line %S" line)
      | Some (name, _, _, _, _) ->
          parse_error "family %s: duplicate TYPE line" name
      | None -> parse_error "TYPE line %S without a HELP line" line
    else if String.length line >= 1 && line.[0] = '#' then
      Ok () (* other comments are legal exposition, carrying no data *)
    else
      let* name, labels, value = parse_sample line in
      match !cur with
      | None -> parse_error "sample %s before any family header" name
      | Some (fname, _, kind, samples, ha) -> (
          match kind with
          | "counter" | "gauge" ->
              if name <> fname then
                parse_error "sample %s inside family %s" name fname
              else begin
                samples := { labels; value } :: !samples;
                Ok ()
              end
          | "histogram" -> feed_hist fname ha name labels value
          | _ -> parse_error "sample %s before the TYPE of %s" name fname)
  in
  let rec feed = function
    | [] ->
        let* () = flush () in
        Ok (List.rev !finished)
    | line :: rest ->
        let* () = feed_line line in
        feed rest
  in
  feed (String.split_on_char '\n' text)

(* parser: see mli for the round-trip contract *)
