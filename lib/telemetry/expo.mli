(** Prometheus text exposition (version 0.0.4), dependency-free.

    A scrape is a list of {e metric families} rendered as

    {v
    # HELP parcfl_cache_hits_total Cache lookups served from the cache.
    # TYPE parcfl_cache_hits_total counter
    parcfl_cache_hits_total{shard="0"} 42
    v}

    The renderer is deterministic: families are sorted by name and samples
    by their label sets, so the same registry state always produces the
    same bytes — the test suite diffs scrapes textually. Metric names are
    sanitised to [[a-zA-Z_:][a-zA-Z0-9_:]*]; label values are escaped per
    the exposition spec (backslash, double quote, newline).

    Histograms follow the Prometheus convention: cumulative
    [name_bucket{le="..."}] series ending in [le="+Inf"], plus [name_count]
    and (when the producer tracked it) [name_sum]. {!cumulative_of_log2}
    adapts this repo's log2 bucket arrays ({!Parcfl_stats.Histogram}):
    bucket [i] counts values in [[2^i, 2^(i+1))], so its cumulative upper
    bound is [le = 2^(i+1)], with the last bucket mapped to [+Inf]. *)

type sample = { labels : (string * string) list; value : float }

type hist = {
  h_labels : (string * string) list;
  h_buckets : (float * int) list;
      (** (upper bound, cumulative count); bounds strictly increasing,
          counts non-decreasing, last bound [infinity] *)
  h_count : int;  (** total observations = last bucket's count *)
  h_sum : float option;  (** omitted from the output when [None] *)
}

type family =
  | Counter of { name : string; help : string; samples : sample list }
  | Gauge of { name : string; help : string; samples : sample list }
  | Histogram of { name : string; help : string; series : hist list }

val family_name : family -> string

val sanitize_name : string -> string
(** Replace every character outside [[a-zA-Z0-9_:]] with ['_'] and prefix
    ['_'] when the first character may not start a name. Total: any string
    becomes a valid metric name. *)

val escape_label_value : string -> string
(** Backslash, double quote, and newline each become their two-character
    escaped spelling. *)

val escape_help : string -> string
(** Backslash and newline escaped (HELP lines must stay on one line);
    quotes are left alone outside label position. *)

val counter :
  ?labels:(string * string) list -> name:string -> help:string -> float ->
  family
(** One-sample counter family (the common case). *)

val gauge :
  ?labels:(string * string) list -> name:string -> help:string -> float ->
  family

val cumulative_of_log2 : ?le_scale:float -> int array -> (float * int) list
(** Turn a log2 bucket array into cumulative [(le, count)] pairs; empty
    array becomes a single [+Inf] bucket of 0. [le_scale] multiplies every
    finite upper bound — pass [1e-6] to expose microsecond-bucketed
    observations with second-unit bounds, as base-unit metric names
    ([*_seconds]) require. *)

val histogram_of_log2 :
  ?labels:(string * string) list ->
  ?sum:float ->
  ?le_scale:float ->
  name:string ->
  help:string ->
  int array ->
  family
(** A one-series histogram family from a log2 bucket array. *)

val render : family list -> string
(** The full exposition: families sorted by (sanitised) name, one
    HELP/TYPE header each, samples sorted by label set, trailing newline.
    Non-finite gauge/counter values render as the Prometheus spellings
    NaN, +Inf, and -Inf. *)

val parse_families : string -> (family list, string) result
(** Parse an exposition back into families — the inverse of {!render},
    used by the cluster router to read each replica's scrape and merge
    them into one federated exposition. Accepts exactly the text shape
    {!render} emits (HELP then TYPE then samples; histogram series as
    contiguous bucket runs closed by a [_count] line) plus blank lines
    and non-HELP/TYPE comments. Round trip: for any family list [fs],
    [parse_families (render fs)] succeeds and re-rendering its result
    reproduces [render fs] byte for byte — values print with 12
    significant digits, which re-read to the same float. Malformed input
    yields [Error] with a line-level reason rather than a partial
    parse. *)
