type t = { mutable collectors : (unit -> Expo.family list) list }

let create () = { collectors = [] }
let register t f = t.collectors <- f :: t.collectors

let collect t =
  List.concat_map
    (fun f -> try f () with _ -> [])
    (List.rev t.collectors)

let render t = Expo.render (collect t)
