(** A registry of pull-based collectors.

    Subsystems register a thunk that snapshots their counters into
    {!Expo.family} values; a scrape calls every thunk and renders the
    combined exposition. Collectors run on the scraping thread, so they
    must only read (atomics, immutable snapshots) — never mutate solver
    state. Registration order is irrelevant: {!Expo.render} sorts. *)

type t

val create : unit -> t

val register : t -> (unit -> Expo.family list) -> unit
(** Add a collector. Thread-safety: registration is expected at service
    construction time, before concurrent scrapes begin. *)

val collect : t -> Expo.family list
(** Run every collector and concatenate the families. A collector that
    raises contributes nothing (a broken gauge must not take down the
    scrape endpoint). *)

val render : t -> string
(** [Expo.render (collect t)]. *)
