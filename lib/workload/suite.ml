module Ir = Parcfl_lang.Ir
module Types = Parcfl_lang.Types
module Callgraph = Parcfl_lang.Callgraph
module Lower = Parcfl_lang.Lower
module Pag = Parcfl_pag.Pag

type t = {
  profile : Profile.t;
  program : Ir.program;
  callgraph : Callgraph.t;
  lowering : Lower.t;
  pag : Pag.t;
  queries : Pag.var array;
  type_level : int -> int;
}

let build profile =
  let program = Genprog.generate profile in
  let callgraph = Callgraph.build program in
  let lowering = Lower.lower program callgraph in
  let pag = lowering.Lower.pag in
  let queries = Pag.app_locals pag in
  let types = program.Ir.types in
  let type_level t = Types.level types t in
  { profile; program; callgraph; lowering; pag; queries; type_level }

let build_by_name name =
  match Profile.find name with
  | Some p -> Some (build p)
  | None when name = Profile.tiny.Profile.name -> Some (build Profile.tiny)
  | None -> None

let query_mix ?(seed = 0) ?(hot_share = 0.75) ?(hot_frac = 0.1) t ~n =
  if n < 0 then invalid_arg "Suite.query_mix: n must be >= 0";
  let qs = t.queries in
  let total = Array.length qs in
  if total = 0 then [||]
  else begin
    let rng =
      Parcfl_prim.Rng.create
        (Int64.add 0x9e3779b97f4a7c15L (Int64.of_int seed))
    in
    let hot = max 1 (int_of_float (hot_frac *. float_of_int total)) in
    Array.init n (fun _ ->
        if Parcfl_prim.Rng.float rng 1.0 < hot_share then
          qs.(Parcfl_prim.Rng.int rng hot)
        else qs.(Parcfl_prim.Rng.int rng total))
  end

let n_classes t = Types.n_classes t.program.Ir.types

let n_methods t = Array.length t.program.Ir.methods

let pp_info ppf t =
  Format.fprintf ppf "%-16s classes=%d methods=%d nodes=%d edges=%d queries=%d"
    t.profile.Profile.name (n_classes t) (n_methods t) (Pag.n_nodes t.pag)
    (Pag.n_edges t.pag)
    (Array.length t.queries)
