(** A benchmark instance ready to analyse: generated program, call graph,
    PAG, and the query batch (all application-code locals, as in the
    paper's Section IV-C). *)

type t = {
  profile : Profile.t;
  program : Parcfl_lang.Ir.program;
  callgraph : Parcfl_lang.Callgraph.t;
  lowering : Parcfl_lang.Lower.t;
  pag : Parcfl_pag.Pag.t;
  queries : Parcfl_pag.Pag.var array;
  type_level : int -> int;
      (** [L(t)] over the benchmark's class table, for DD scheduling. *)
}

val build : Profile.t -> t

val build_by_name : string -> t option
(** Looks up {!Profile.all} by name, plus the ["tiny"] smoke profile. *)

val query_mix :
  ?seed:int -> ?hot_share:float -> ?hot_frac:float -> t -> n:int -> Parcfl_pag.Pag.var array
(** [n] queries sampled deterministically from the benchmark's query set
    with a skewed popularity: a fraction [hot_share] (default 0.75) of
    draws land in a "hot set" of the first [hot_frac] (default 0.1) of
    the queries, the rest are uniform over all queries. Repeats are the
    point — they exercise a result cache. Empty when the benchmark has no
    queries. *)

val n_classes : t -> int
val n_methods : t -> int

val pp_info : Format.formatter -> t -> unit
(** One Table-I-style info line. *)
