(* CI smoke test for `parcfl cluster`: boot the real binary — a router in
   front of two spawned replicas with snapshot warm-up — pipeline a
   400-query mix through the router socket, SIGKILL one replica after the
   150th answer, and require every one of the 400 queries to come back as
   a correct answer (cross-checked against an in-process solve): the
   failover replay may move work, never lose or corrupt it.

   Usage: cluster_smoke.exe <path/to/parcfl_cli.exe> *)

module P = Parcfl
module Proto = P.Svc_protocol

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let deadline = Unix.gettimeofday () +. 300.0

let check_deadline () =
  if Unix.gettimeofday () > deadline then fail "smoke test deadline exceeded"

let () =
  if Array.length Sys.argv < 2 then fail "usage: cluster_smoke <parcfl_cli.exe>";
  let cli = Sys.argv.(1) in
  if not (Sys.file_exists cli) then fail "no such binary %s" cli;

  let bench =
    match P.Suite.build_by_name "tiny" with
    | Some b -> b
    | None -> fail "tiny benchmark missing"
  in
  (* Ground truth from one in-process session — the same PAG and config
     every replica builds. *)
  let session =
    P.Solver.make_session ~config:P.Config.default
      ~ctx_store:(P.Ctx.create_store ()) bench.P.Suite.pag
  in
  let expected v =
    P.Query.objects (P.Solver.points_to session v).P.Query.result
    |> List.map (P.Pag.obj_name bench.P.Suite.pag)
    |> List.sort_uniq compare
  in
  let mix = P.Suite.query_mix ~seed:0 ~hot_share:0.75 bench ~n:64 in
  if Array.length mix = 0 then fail "tiny benchmark has no queries";
  let n_requests = 400 in
  let var_of i = mix.(i mod Array.length mix) in

  let sock =
    Printf.sprintf "%s/parcfl_cluster_smoke_%d.sock"
      (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in

  (* Boot the cluster with its stdout piped so we learn the replica pids. *)
  let from_child_r, from_child_w = Unix.pipe ~cloexec:false () in
  let cluster_pid =
    Unix.create_process cli
      [|
        cli; "cluster"; "-b"; "tiny"; "--socket"; sock; "-r"; "2";
        "--preseed"; "-t"; "1"; "--poll-ms"; "100";
      |]
      Unix.stdin from_child_w Unix.stderr
  in
  Unix.close from_child_w;
  let cluster_out = Unix.in_channel_of_descr from_child_r in
  let cleanup () =
    (try Unix.kill cluster_pid Sys.sigkill with Unix.Unix_error _ -> ());
    ()
  in
  at_exit cleanup;

  (* Read the boot banner: two replica lines, then the router line. *)
  let replica_pids = Hashtbl.create 2 in
  let rec read_banner () =
    check_deadline ();
    match input_line cluster_out with
    | exception End_of_file -> fail "cluster exited during boot"
    | line ->
        (try
           Scanf.sscanf line "replica %d socket=%s@ pid=%d" (fun id _ pid ->
               Hashtbl.replace replica_pids id pid)
         with Scanf.Scan_failure _ | End_of_file | Failure _ -> ());
        let is_router_line =
          String.length line >= 6 && String.sub line 0 6 = "router"
        in
        if not is_router_line then read_banner ()
  in
  read_banner ();
  let replica0_pid =
    match Hashtbl.find_opt replica_pids 0 with
    | Some pid -> pid
    | None -> fail "boot banner named no replica 0 pid"
  in

  (* Poll-connect to the router socket. *)
  let fd =
    let rec go tries =
      check_deadline ();
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock) with
      | () -> fd
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if tries > 600 then fail "router socket never accepted"
          else begin
            Unix.sleepf 0.05;
            go (tries + 1)
          end
    in
    go 0
  in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let send r =
    output_string oc (Proto.request_to_string r ^ "\n");
    flush oc
  in
  let recv () =
    check_deadline ();
    match input_line ic with
    | line -> (
        match Proto.response_of_string line with
        | Ok r -> r
        | Error e -> fail "bad response %S: %s" line e)
    | exception End_of_file -> fail "router closed the connection early"
  in

  (* Pipeline the whole mix: responses come back in completion order (two
     replicas race), so collect by id. *)
  for i = 0 to n_requests - 1 do
    send
      (Proto.Query
         {
           id = i;
           var = Printf.sprintf "#%d" (var_of i);
           budget = None;
           deadline_ms = None;
         })
  done;

  let answers : (int, string list) Hashtbl.t = Hashtbl.create n_requests in
  let killed = ref false in
  for k = 1 to n_requests do
    (match recv () with
    | Proto.Answer { id; objects; _ } ->
        if Hashtbl.mem answers id then fail "query %d answered twice" id;
        if id < 0 || id >= n_requests then fail "answer for unknown id %d" id;
        Hashtbl.replace answers id objects
    | r ->
        fail "expected an answer, got %s (after %d answers)"
          (Proto.response_to_string r) (Hashtbl.length answers));
    if k = 150 && not !killed then begin
      (* Mid-load failure: replica 0 dies hard. Its queued and future
         work must move to replica 1 without losing an answer. *)
      killed := true;
      (try Unix.kill replica0_pid Sys.sigkill
       with Unix.Unix_error _ -> fail "could not kill replica 0")
    end
  done;
  if not !killed then fail "never reached the kill point";

  (* Zero lost, zero incorrect: every id answered, every answer equal to
     the in-process solve. *)
  for i = 0 to n_requests - 1 do
    match Hashtbl.find_opt answers i with
    | None -> fail "query %d was lost" i
    | Some objects ->
        if objects <> expected (var_of i) then
          fail "query %d: wrong points-to set after failover" i
  done;

  (* The cluster keeps reporting healthy on the surviving replica, and
     names the drained one. *)
  send (Proto.Health 9000);
  (match recv () with
  | Proto.Health_reply { id = 9000; healthy; reasons } ->
      if not healthy then
        fail "cluster degraded after failover: %s" (String.concat "; " reasons);
      if not (List.exists (fun r -> String.length r > 0) reasons) then
        fail "health report does not name the drained replica"
  | r -> fail "expected health, got %s" (Proto.response_to_string r));

  send Proto.Quit;
  close_out oc;
  let _, status = Unix.waitpid [] cluster_pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "cluster exited %d" n
  | Unix.WSIGNALED n -> fail "cluster killed by signal %d" n
  | Unix.WSTOPPED n -> fail "cluster stopped by signal %d" n);
  (try Sys.remove sock with Sys_error _ -> ());
  Printf.printf "cluster smoke: ok (%d answers, replica 0 killed at 150)\n"
    n_requests
