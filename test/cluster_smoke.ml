(* CI smoke test for `parcfl cluster`: boot the real binary — a router in
   front of two spawned replicas with snapshot warm-up, live rebalancing
   and cluster tracing on — then:

   1. warm up with 40 pipelined queries and check the *federated* scrape:
      the router's `metrics` must sum the two replicas' latency-histogram
      counts (cross-checked against direct per-replica scrapes), relabel
      per-replica gauges, and expose the router's own parcfl_router_*
      families;
   2. pipeline a 400-query mix through the router socket, SIGKILL one
      replica after the 150th answer, and require every one of the 400
      queries to come back as a correct answer (cross-checked against an
      in-process solve): the failover replay may move work — and the
      rebalancer may re-home components mid-run — never lose or corrupt
      it;
   3. after the kill, `stats` and `slowlog` must federate over the
      surviving replica (replicas=1, entries tagged with their replica);
   4. after quit, the merged cluster trace must show at least one request
      id in both the router lane (pid 0) and a replica lane (pid >= 1).

   Usage: cluster_smoke.exe <path/to/parcfl_cli.exe> *)

module P = Parcfl
module Proto = P.Svc_protocol

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let deadline = Unix.gettimeofday () +. 300.0

let check_deadline () =
  if Unix.gettimeofday () > deadline then fail "smoke test deadline exceeded"

let connect_path path =
  let rec go tries =
    check_deadline ();
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if tries > 600 then fail "socket %s never accepted" path
        else begin
          Unix.sleepf 0.05;
          go (tries + 1)
        end
  in
  go 0

(* One fresh-connection scrape of a serve socket's metrics verb. *)
let scrape_metrics path =
  let fd = connect_path path in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  output_string oc "metrics 77\n";
  flush oc;
  let line =
    match input_line ic with
    | line -> line
    | exception End_of_file -> fail "%s closed during scrape" path
  in
  let body =
    match Proto.response_of_string line with
    | Ok (Proto.Metrics_reply { body; _ }) -> body
    | Ok r -> fail "scrape of %s got %s" path (Proto.response_to_string r)
    | Error e -> fail "scrape of %s unparseable: %s" path e
  in
  (try close_out oc with Sys_error _ -> ());
  body

let parse_exposition what text =
  match P.Expo.parse_families text with
  | Ok fams -> fams
  | Error e -> fail "%s exposition does not parse: %s" what e

let hist_count name fams =
  let rec go = function
    | [] -> fail "family %s missing from exposition" name
    | P.Expo.Histogram { name = n; series; _ } :: _ when n = name ->
        List.fold_left (fun acc s -> acc + s.P.Expo.h_count) 0 series
    | _ :: rest -> go rest
  in
  go fams

let () =
  if Array.length Sys.argv < 2 then fail "usage: cluster_smoke <parcfl_cli.exe>";
  let cli = Sys.argv.(1) in
  if not (Sys.file_exists cli) then fail "no such binary %s" cli;

  let bench =
    match P.Suite.build_by_name "tiny" with
    | Some b -> b
    | None -> fail "tiny benchmark missing"
  in
  (* Ground truth from one in-process session — the same PAG and config
     every replica builds. *)
  let session =
    P.Solver.make_session ~config:P.Config.default
      ~ctx_store:(P.Ctx.create_store ()) bench.P.Suite.pag
  in
  let expected v =
    P.Query.objects (P.Solver.points_to session v).P.Query.result
    |> List.map (P.Pag.obj_name bench.P.Suite.pag)
    |> List.sort_uniq compare
  in
  let mix = P.Suite.query_mix ~seed:0 ~hot_share:0.75 bench ~n:64 in
  if Array.length mix = 0 then fail "tiny benchmark has no queries";
  let n_requests = 400 in
  let var_of i = mix.(i mod Array.length mix) in

  let sock =
    Printf.sprintf "%s/parcfl_cluster_smoke_%d.sock"
      (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in
  let trace_path = sock ^ ".trace.json" in

  (* Boot the cluster with its stdout piped so we learn the replica pids.
     Rebalancing and tracing are both on: the run exercises live
     migration under load, and the exit path must merge the lanes. *)
  let from_child_r, from_child_w = Unix.pipe ~cloexec:false () in
  let cluster_pid =
    Unix.create_process cli
      [|
        cli; "cluster"; "-b"; "tiny"; "--socket"; sock; "-r"; "2";
        "--preseed"; "-t"; "1"; "--poll-ms"; "100";
        "--rebalance-ms"; "150"; "--trace-out"; trace_path;
      |]
      Unix.stdin from_child_w Unix.stderr
  in
  Unix.close from_child_w;
  let cluster_out = Unix.in_channel_of_descr from_child_r in
  let cleanup () =
    (try Unix.kill cluster_pid Sys.sigkill with Unix.Unix_error _ -> ());
    ()
  in
  at_exit cleanup;

  (* Read the boot banner: two replica lines, then the router line. *)
  let replica_pids = Hashtbl.create 2 in
  let rec read_banner () =
    check_deadline ();
    match input_line cluster_out with
    | exception End_of_file -> fail "cluster exited during boot"
    | line ->
        (try
           Scanf.sscanf line "replica %d socket=%s@ pid=%d" (fun id _ pid ->
               Hashtbl.replace replica_pids id pid)
         with Scanf.Scan_failure _ | End_of_file | Failure _ -> ());
        let is_router_line =
          String.length line >= 6 && String.sub line 0 6 = "router"
        in
        if not is_router_line then read_banner ()
  in
  read_banner ();
  let replica0_pid =
    match Hashtbl.find_opt replica_pids 0 with
    | Some pid -> pid
    | None -> fail "boot banner named no replica 0 pid"
  in

  let fd = connect_path sock in
  let oc = Unix.out_channel_of_descr fd in
  let ic = Unix.in_channel_of_descr fd in
  let send r =
    output_string oc (Proto.request_to_string r ^ "\n");
    flush oc
  in
  let recv () =
    check_deadline ();
    match input_line ic with
    | line -> (
        match Proto.response_of_string line with
        | Ok r -> r
        | Error e -> fail "bad response %S: %s" line e)
    | exception End_of_file -> fail "router closed the connection early"
  in

  (* ------------- phase 1: warm-up + federated scrape ---------------- *)

  let n_warmup = 40 in
  for i = 0 to n_warmup - 1 do
    send
      (Proto.Query
         {
           id = 10000 + i;
           var = Printf.sprintf "#%d" (var_of i);
           budget = None;
           deadline_ms = None;
           trace = None;
         })
  done;
  for _ = 1 to n_warmup do
    match recv () with
    | Proto.Answer _ -> ()
    | r -> fail "warm-up expected an answer, got %s" (Proto.response_to_string r)
  done;

  (* Provenance through the router: explain is shard-affine — it must
     reach the replica that owns the variable and come back with a chain
     the library witness agrees with. *)
  let explain_var = var_of 0 in
  let explain_obj =
    match
      P.Query.objects
        (P.Solver.points_to session explain_var).P.Query.result
    with
    | o :: _ -> o
    | [] -> fail "warm-up variable %d has an empty points-to set" explain_var
  in
  send
    (Proto.Explain
       {
         id = 8100;
         var = Printf.sprintf "#%d" explain_var;
         obj = Printf.sprintf "#%d" explain_obj;
       });
  (match recv () with
  | Proto.Explain_reply
      { id = 8100; found = true; depth; chain = P.Json.List edges; _ } -> (
      if edges = [] then fail "routed explain sent no chain";
      match P.Solver.explain session explain_var explain_obj with
      | None -> fail "library explain lost the routed fact"
      | Some w ->
          if P.Solver.Witness.depth w <> depth then
            fail "routed depth %d, library depth %d" depth
              (P.Solver.Witness.depth w))
  | r -> fail "expected routed explain, got %s" (Proto.response_to_string r));

  (* No query is in flight now, so per-replica counts are stable: the
     router's federated scrape must equal the sum of direct scrapes. *)
  let r0 = parse_exposition "replica 0" (scrape_metrics (sock ^ ".r0")) in
  let r1 = parse_exposition "replica 1" (scrape_metrics (sock ^ ".r1")) in
  send (Proto.Metrics 8000);
  let federated =
    match recv () with
    | Proto.Metrics_reply { id = 8000; body } -> body
    | r -> fail "expected federated metrics, got %s" (Proto.response_to_string r)
  in
  let fed = parse_exposition "federated" federated in
  let lat = "parcfl_svc_latency_us" in
  let direct_sum = hist_count lat r0 + hist_count lat r1 in
  if direct_sum < n_warmup then
    fail "replicas answered %d queries but observed only %d" n_warmup
      direct_sum;
  if hist_count lat fed <> direct_sum then
    fail "federated %s count %d <> per-replica sum %d" lat
      (hist_count lat fed) direct_sum;
  (* Per-replica gauges survive relabelled, one sample per replica. *)
  let queue_depth_replicas =
    List.concat_map
      (function
        | P.Expo.Gauge { name = "parcfl_svc_queue_depth"; samples; _ } ->
            List.filter_map
              (fun s -> List.assoc_opt "replica" s.P.Expo.labels)
              samples
        | _ -> [])
      fed
  in
  if List.sort_uniq compare queue_depth_replicas <> [ "0"; "1" ] then
    fail "federated queue-depth gauge not labelled per replica (got %s)"
      (String.concat "," queue_depth_replicas);
  (* The router's own registry federates in. *)
  if
    not
      (List.exists
         (fun f -> P.Expo.family_name f = "parcfl_router_routed_total")
         fed)
  then fail "router families missing from the federated scrape";
  (* The witness index shows in the federated scrape: a per-replica
     gauge, and the explain above indexed one answer somewhere. *)
  let witness_entries =
    List.concat_map
      (function
        | P.Expo.Gauge { name = "parcfl_witness_indexed_answers"; samples; _ }
          ->
            List.map (fun s -> s.P.Expo.value) samples
        | _ -> [])
      fed
  in
  if witness_entries = [] then
    fail "parcfl_witness_indexed_answers missing from the federated scrape";
  if List.fold_left ( +. ) 0.0 witness_entries < 1.0 then
    fail "routed explain left no indexed answer in the federated scrape";

  (* ------------- phase 2: failover under pipelined load -------------- *)

  for i = 0 to n_requests - 1 do
    send
      (Proto.Query
         {
           id = i;
           var = Printf.sprintf "#%d" (var_of i);
           budget = None;
           deadline_ms = None;
           trace = None;
         })
  done;

  let answers : (int, string list) Hashtbl.t = Hashtbl.create n_requests in
  let killed = ref false in
  for k = 1 to n_requests do
    (match recv () with
    | Proto.Answer { id; objects; _ } ->
        if Hashtbl.mem answers id then fail "query %d answered twice" id;
        if id < 0 || id >= n_requests then fail "answer for unknown id %d" id;
        Hashtbl.replace answers id objects
    | r ->
        fail "expected an answer, got %s (after %d answers)"
          (Proto.response_to_string r) (Hashtbl.length answers));
    if k = 150 && not !killed then begin
      (* Mid-load failure: replica 0 dies hard. Its queued and future
         work must move to replica 1 without losing an answer. *)
      killed := true;
      (try Unix.kill replica0_pid Sys.sigkill
       with Unix.Unix_error _ -> fail "could not kill replica 0")
    end
  done;
  if not !killed then fail "never reached the kill point";

  (* Zero lost, zero incorrect: every id answered, every answer equal to
     the in-process solve — across failover replay *and* any rebalance
     migrations the 150 ms re-scan performed mid-run. *)
  for i = 0 to n_requests - 1 do
    match Hashtbl.find_opt answers i with
    | None -> fail "query %d was lost" i
    | Some objects ->
        if objects <> expected (var_of i) then
          fail "query %d: wrong points-to set after failover" i
  done;

  (* The cluster keeps reporting healthy on the surviving replica, and
     names the drained one. *)
  send (Proto.Health 9000);
  (match recv () with
  | Proto.Health_reply { id = 9000; healthy; reasons } ->
      if not healthy then
        fail "cluster degraded after failover: %s" (String.concat "; " reasons);
      if not (List.exists (fun r -> String.length r > 0) reasons) then
        fail "health report does not name the drained replica"
  | r -> fail "expected health, got %s" (Proto.response_to_string r));

  (* --------- phase 3: federation over the surviving replica ---------- *)

  send (Proto.Stats 9100);
  (match recv () with
  | Proto.Stats_reply { id = 9100; stats } -> (
      (match P.Json.member "replicas" stats with
      | Some (P.Json.Int 1) -> ()
      | _ -> fail "post-kill stats must federate over exactly 1 replica");
      match P.Json.member "totals" stats with
      | Some (P.Json.Obj (_ :: _)) -> ()
      | _ -> fail "federated stats carry no totals")
  | r -> fail "expected federated stats, got %s" (Proto.response_to_string r));

  send (Proto.Slowlog { id = 9200; limit = Some 5 });
  (match recv () with
  | Proto.Slowlog_reply { id = 9200; entries = P.Json.List entries } ->
      if entries = [] then fail "federated slowlog is empty after 400 queries";
      List.iter
        (fun e ->
          match P.Json.member "replica" e with
          | Some (P.Json.Int 1) -> ()
          | _ -> fail "slowlog entry not tagged with the surviving replica")
        entries
  | r -> fail "expected federated slowlog, got %s" (Proto.response_to_string r));

  send Proto.Quit;
  close_out oc;
  let _, status = Unix.waitpid [] cluster_pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "cluster exited %d" n
  | Unix.WSIGNALED n -> fail "cluster killed by signal %d" n
  | Unix.WSTOPPED n -> fail "cluster stopped by signal %d" n);

  (* -------------- phase 4: the merged cluster trace ------------------ *)

  let trace_text =
    match In_channel.with_open_bin trace_path In_channel.input_all with
    | text -> text
    | exception Sys_error e -> fail "no merged trace: %s" e
  in
  let trace =
    match P.Json.of_string trace_text with
    | Ok t -> t
    | Error e -> fail "merged trace does not parse: %s" e
  in
  let events =
    match P.Json.member "traceEvents" trace with
    | Some (P.Json.List l) -> l
    | _ -> fail "merged trace has no traceEvents"
  in
  let request_id pid_want e =
    match
      (P.Json.member "pid" e, P.Json.member "name" e, P.Json.member "args" e)
    with
    | Some (P.Json.Int pid), Some (P.Json.String "request"), Some args
      when pid_want pid -> (
        match P.Json.member "id" args with
        | Some (P.Json.Int id) -> Some id
        | _ -> None)
    | _ -> None
  in
  let router_ids =
    List.filter_map (request_id (fun pid -> pid = 0)) events
  in
  let replica_ids =
    List.filter_map (request_id (fun pid -> pid >= 1)) events
  in
  if router_ids = [] then fail "merged trace has no router-lane requests";
  if replica_ids = [] then fail "merged trace has no replica-lane requests";
  let correlated =
    List.exists (fun id -> List.mem id router_ids) replica_ids
  in
  if not correlated then
    fail "no request id appears in both the router and a replica lane";

  (try Sys.remove sock with Sys_error _ -> ());
  (try Sys.remove trace_path with Sys_error _ -> ());
  Array.iter
    (fun suffix ->
      try Sys.remove (sock ^ suffix) with Sys_error _ -> ())
    [| ".r0"; ".r1"; ".r0.trace.json"; ".r1.trace.json"; ".jmpsnap" |];
  Printf.printf
    "cluster smoke: ok (%d answers, replica 0 killed at 150, federated \
     scrape consistent, trace lanes correlated)\n"
    n_requests
