(* CI smoke test for `parcfl serve`: start the real binary on a pipe pair
   (the stdio transport), send a ping, three queries — one repeated so the
   cross-batch cache must hit — and a stats probe, then quit and check
   every response, including that served answers equal a direct in-process
   solve of the same variables.

   Usage: serve_smoke.exe <path/to/parcfl_cli.exe> *)

module P = Parcfl
module Proto = P.Svc_protocol

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let () =
  if Array.length Sys.argv < 2 then fail "usage: serve_smoke <parcfl_cli.exe>";
  let cli = Sys.argv.(1) in
  if not (Sys.file_exists cli) then fail "no such binary %s" cli;

  (* The ground truth: the same deterministic benchmark the server builds. *)
  let bench =
    match P.Suite.build_by_name "tiny" with
    | Some b -> b
    | None -> fail "tiny benchmark missing"
  in
  let expected v =
    let session =
      P.Solver.make_session ~config:P.Config.default
        ~ctx_store:(P.Ctx.create_store ()) bench.P.Suite.pag
    in
    P.Query.objects (P.Solver.points_to session v).P.Query.result
    |> List.map (P.Pag.obj_name bench.P.Suite.pag)
    |> List.sort_uniq compare
  in
  let v0 = bench.P.Suite.queries.(0) in
  let v1 = bench.P.Suite.queries.(min 1 (Array.length bench.P.Suite.queries - 1)) in

  let to_child_r, to_child_w = Unix.pipe ~cloexec:false () in
  let from_child_r, from_child_w = Unix.pipe ~cloexec:false () in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "-b"; "tiny"; "-t"; "1"; "--stdio" |]
      to_child_r from_child_w Unix.stderr
  in
  Unix.close to_child_r;
  Unix.close from_child_w;
  let oc = Unix.out_channel_of_descr to_child_w in
  let ic = Unix.in_channel_of_descr from_child_r in

  let deadline = Unix.gettimeofday () +. 120.0 in
  let send r =
    output_string oc (Proto.request_to_string r ^ "\n");
    flush oc
  in
  let recv () =
    if Unix.gettimeofday () > deadline then fail "smoke test deadline exceeded";
    match input_line ic with
    | line -> (
        match Proto.response_of_string line with
        | Ok r -> r
        | Error e -> fail "bad response %S: %s" line e)
    | exception End_of_file -> fail "server closed the stream early"
  in

  send (Proto.Ping 1);
  (match recv () with
  | Proto.Pong 1 -> ()
  | r -> fail "expected pong, got %s" (Proto.response_to_string r));

  let ask id v =
    send
      (Proto.Query
         { id; var = Printf.sprintf "#%d" v; budget = None; deadline_ms = None; trace = None })
  in
  let expect_answer id v ~cached_ok =
    match recv () with
    | Proto.Answer { id = id'; objects; cached; latency_us; breakdown; _ }
      when id' = id ->
        if objects <> expected v then fail "query %d: wrong points-to set" id;
        if (not cached_ok) && cached then fail "query %d: unexpected cache hit" id;
        (* The lifecycle breakdown must account for the reported latency:
           four non-negative stages summing to within 5% of the total. *)
        List.iter
          (fun s -> if s < 0.0 then fail "query %d: negative stage" id)
          (P.Svc_span.stage_values breakdown);
        let sum = P.Svc_span.total_us breakdown in
        if abs_float (sum -. latency_us) > (0.05 *. latency_us) +. 1.0 then
          fail "query %d: breakdown sums to %.1fus, latency is %.1fus" id sum
            latency_us;
        if (not cached) && latency_us <= 0.0 then
          fail "query %d: cold answer with no latency" id;
        cached
    | r -> fail "query %d: unexpected %s" id (Proto.response_to_string r)
  in
  (* Three queries; responses come back in completion order per request,
     one line each, on one pipe — ask and await one at a time. *)
  ask 10 v0;
  ignore (expect_answer 10 v0 ~cached_ok:false);
  ask 11 v1;
  ignore (expect_answer 11 v1 ~cached_ok:(v1 = v0));
  ask 12 v0;
  if not (expect_answer 12 v0 ~cached_ok:true) then
    fail "repeated query 12 missed the cache";

  send (Proto.Stats 20);
  (match recv () with
  | Proto.Stats_reply { id = 20; stats = P.Json.Obj fields } -> (
      match List.assoc_opt "cache_hits" fields with
      | Some (P.Json.Int h) when h >= 1 -> ()
      | _ -> fail "stats report no cache hits")
  | r -> fail "expected stats, got %s" (Proto.response_to_string r));

  (* Telemetry: a full Prometheus exposition over the same wire. *)
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  send (Proto.Metrics 21);
  (match recv () with
  | Proto.Metrics_reply { id = 21; body } ->
      List.iter
        (fun needle ->
          if not (contains needle body) then
            fail "metrics exposition lacks %S" needle)
        [
          "# TYPE parcfl_jmp_hits_total counter";
          "# TYPE parcfl_sched_groups_total counter";
          "# TYPE parcfl_cache_evictions_total counter";
          "# TYPE parcfl_svc_latency_us histogram";
          "parcfl_svc_latency_us_bucket{le=\"+Inf\"}";
          "# TYPE parcfl_stage_seconds histogram";
          "parcfl_stage_seconds_bucket{stage=\"solve\"";
          "# TYPE parcfl_svc_healthy gauge";
          "parcfl_svc_healthy 1";
          "# TYPE parcfl_svc_in_flight gauge";
        ]
  | r -> fail "expected metrics, got %s" (Proto.response_to_string r));

  (* Liveness: a serving, progressing server reports healthy. *)
  send (Proto.Health 23);
  (match recv () with
  | Proto.Health_reply { id = 23; healthy = true; reasons = [] } -> ()
  | Proto.Health_reply { id = 23; healthy = false; reasons } ->
      fail "healthy server reports degraded: %s" (String.concat "; " reasons)
  | r -> fail "expected health, got %s" (Proto.response_to_string r));

  (* The flight recorder saw the three answered queries. *)
  send (Proto.Slowlog { id = 22; limit = Some 2 });
  (match recv () with
  | Proto.Slowlog_reply { id = 22; entries = P.Json.List l } ->
      if l = [] then fail "slowlog is empty after three queries";
      if List.length l > 2 then fail "slowlog ignored the limit"
  | r -> fail "expected slowlog, got %s" (Proto.response_to_string r));

  (* Provenance over the wire: explain one (var, obj) fact and hold the
     served chain to the library's own witness for the same pair — same
     depth, same stable edge ids, and the chain must replay. *)
  let explain_session =
    P.Solver.make_session ~config:P.Config.default
      ~ctx_store:(P.Ctx.create_store ()) bench.P.Suite.pag
  in
  let explain_obj =
    match
      P.Query.objects (P.Solver.points_to explain_session v0).P.Query.result
    with
    | o :: _ -> o
    | [] -> fail "query variable %d has an empty points-to set" v0
  in
  send
    (Proto.Explain
       {
         id = 25;
         var = Printf.sprintf "#%d" v0;
         obj = Printf.sprintf "#%d" explain_obj;
       });
  (match recv () with
  | Proto.Explain_reply
      { id = 25; found = true; depth; latency_us; chain = P.Json.List edges; _ }
    -> (
      if latency_us < 0.0 then fail "explain reports negative latency";
      if edges = [] then fail "explain found the fact but sent no chain";
      match P.Solver.explain explain_session v0 explain_obj with
      | None -> fail "library explain lost the served fact"
      | Some w ->
          if P.Solver.Witness.depth w <> depth then
            fail "wire depth %d, library depth %d" depth
              (P.Solver.Witness.depth w);
          (match
             P.Solver.Witness.replay bench.P.Suite.pag ~query:v0 w
           with
          | Ok () -> ()
          | Error e -> fail "library witness fails replay: %s" e);
          let wire_ids =
            List.filter_map
              (fun e ->
                match e with
                | P.Json.Obj fields -> (
                    match List.assoc_opt "edge" fields with
                    | Some (P.Json.Int id) -> Some id
                    | _ -> None)
                | _ -> None)
              edges
          in
          (match P.Solver.Witness.edge_ids bench.P.Suite.pag w with
          | Ok ids when ids = wire_ids -> ()
          | Ok _ -> fail "wire chain ids differ from the library witness"
          | Error e -> fail "library chain has no ids: %s" e))
  | r -> fail "expected explain reply, got %s" (Proto.response_to_string r));

  send Proto.Quit;
  close_out oc;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> fail "server exited %d" n
  | Unix.WSIGNALED n -> fail "server killed by signal %d" n
  | Unix.WSTOPPED n -> fail "server stopped by signal %d" n);

  (* Oracle leg: an --insensitive --oracle server must return exactly the
     (id, var, objects) payloads of an --insensitive server without the
     tier, and account the traffic as oracle hits. The "cold answer with
     no latency" rule above deliberately does NOT apply here: the tier's
     latency is a paired wall-clock read that may quantise to ~0. *)
  let with_server extra_args f =
    let to_r, to_w = Unix.pipe ~cloexec:false () in
    let from_r, from_w = Unix.pipe ~cloexec:false () in
    let pid =
      Unix.create_process cli
        (Array.append
           [| cli; "serve"; "-b"; "tiny"; "-t"; "1"; "--stdio" |]
           extra_args)
        to_r from_w Unix.stderr
    in
    Unix.close to_r;
    Unix.close from_w;
    let oc = Unix.out_channel_of_descr to_w in
    let ic = Unix.in_channel_of_descr from_r in
    let send r =
      output_string oc (Proto.request_to_string r ^ "\n");
      flush oc
    in
    let recv () =
      if Unix.gettimeofday () > deadline then fail "smoke test deadline exceeded";
      match input_line ic with
      | line -> (
          match Proto.response_of_string line with
          | Ok r -> r
          | Error e -> fail "bad response %S: %s" line e)
      | exception End_of_file -> fail "oracle leg: server closed the stream"
    in
    let out = f ~send ~recv in
    send Proto.Quit;
    close_out oc;
    let _, status = Unix.waitpid [] pid in
    (match status with
    | Unix.WEXITED 0 -> ()
    | Unix.WEXITED n -> fail "oracle-leg server exited %d" n
    | Unix.WSIGNALED n -> fail "oracle-leg server killed by signal %d" n
    | Unix.WSTOPPED n -> fail "oracle-leg server stopped by signal %d" n);
    out
  in
  let probe = [ (30, v0); (31, v1); (32, v0) ] in
  let ask_all ~send ~recv =
    List.map
      (fun (id, v) ->
        send
          (Proto.Query
             {
               id;
               var = Printf.sprintf "#%d" v;
               budget = None;
               deadline_ms = None;
               trace = None;
             });
        match recv () with
        | Proto.Answer { id = id'; var; objects; _ } when id' = id ->
            (id, var, objects)
        | r -> fail "oracle leg query %d: unexpected %s" id
                 (Proto.response_to_string r))
      probe
  in
  let plain = with_server [| "--insensitive" |] ask_all in
  let oracled =
    with_server [| "--insensitive"; "--oracle" |] (fun ~send ~recv ->
        let got = ask_all ~send ~recv in
        send (Proto.Stats 40);
        (match recv () with
        | Proto.Stats_reply { id = 40; stats = P.Json.Obj fields } ->
            (match List.assoc_opt "oracle_hits" fields with
            | Some (P.Json.Int h) when h >= List.length probe -> ()
            | _ -> fail "oracle server did not answer from the tier");
            (match List.assoc_opt "oracle_live" fields with
            | Some (P.Json.Int 1) -> ()
            | _ -> fail "oracle server reports the tier dead")
        | r -> fail "expected oracle stats, got %s" (Proto.response_to_string r));
        got)
  in
  List.iter2
    (fun (id, var, objects) (id', var', objects') ->
      if id <> id' || var <> var' || objects <> objects' then
        fail "oracle leg: answer %d differs between the tiers" id)
    plain oracled;
  print_endline "serve smoke: ok"
