module Bitset = Parcfl.Bitset

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let test_empty () =
  let t = Bitset.create () in
  check "empty has no 0" false (Bitset.mem t 0);
  check "empty has no 1000" false (Bitset.mem t 1000);
  check "is_empty" true (Bitset.is_empty t);
  check_int "cardinal" 0 (Bitset.cardinal t)

let test_add_mem () =
  let t = Bitset.create () in
  check "fresh add" true (Bitset.add t 3);
  check "dup add" false (Bitset.add t 3);
  check "mem" true (Bitset.mem t 3);
  check "not mem" false (Bitset.mem t 4);
  check_int "cardinal" 1 (Bitset.cardinal t)

let test_growth () =
  let t = Bitset.create ~capacity:4 () in
  check "add far" true (Bitset.add t 10_000);
  check "mem far" true (Bitset.mem t 10_000);
  check "low still absent" false (Bitset.mem t 1);
  check_int "cardinal" 1 (Bitset.cardinal t)

let test_remove () =
  let t = Bitset.of_list [ 1; 5; 9 ] in
  Bitset.remove t 5;
  check "removed" false (Bitset.mem t 5);
  check "kept" true (Bitset.mem t 9);
  Bitset.remove t 100_000 (* out of range: no-op *)

let test_union () =
  let a = Bitset.of_list [ 1; 2; 3 ] in
  let b = Bitset.of_list [ 3; 4; 500 ] in
  check "changed" true (Bitset.union_into ~dst:a ~src:b);
  check_list "union" [ 1; 2; 3; 4; 500 ] (Bitset.elements a);
  check "idempotent" false (Bitset.union_into ~dst:a ~src:b)

let test_subset_equal () =
  let a = Bitset.of_list [ 1; 2 ] in
  let b = Bitset.of_list [ 1; 2; 3 ] in
  check "a sub b" true (Bitset.subset a b);
  check "b not sub a" false (Bitset.subset b a);
  check "not equal" false (Bitset.equal a b);
  (* Different capacities but same contents must compare equal. *)
  let c = Bitset.create ~capacity:10_000 () in
  ignore (Bitset.add c 1);
  ignore (Bitset.add c 2);
  check "capacity-independent equal" true (Bitset.equal a c);
  check "empty subset of empty" true
    (Bitset.subset (Bitset.create ()) (Bitset.create ()))

let test_clear_copy () =
  let a = Bitset.of_list [ 7; 8 ] in
  let b = Bitset.copy a in
  Bitset.clear a;
  check "cleared" true (Bitset.is_empty a);
  check_list "copy unaffected" [ 7; 8 ] (Bitset.elements b)

let test_negative () =
  let t = Bitset.create () in
  Alcotest.check_raises "negative add" (Invalid_argument "Bitset.add: negative member")
    (fun () -> ignore (Bitset.add t (-1)));
  check "negative mem" false (Bitset.mem t (-3))

let test_word_boundaries () =
  (* The word-widened union/cardinal paths must treat bits straddling the
     64-bit lane edges (63/64, 127/128) and the byte tail identically to
     the old byte-at-a-time code. *)
  let edges = [ 0; 7; 8; 62; 63; 64; 65; 127; 128; 191; 511; 512; 515 ] in
  let t = Bitset.of_list edges in
  check_list "elements across word edges" edges (Bitset.elements t);
  check_int "cardinal across word edges" (List.length edges) (Bitset.cardinal t);
  let dst = Bitset.of_list [ 63 ] in
  check "union across word edges changes dst" true
    (Bitset.union_into ~dst ~src:t);
  check_list "union result" edges (Bitset.elements dst);
  check "union idempotent at word edges" false (Bitset.union_into ~dst ~src:t);
  (* A dst strictly wider than src: word loop must not read past src. *)
  let wide = Bitset.of_list [ 10_000 ] in
  check "narrow into wide" true (Bitset.union_into ~dst:wide ~src:(Bitset.of_list [ 64 ]));
  check_list "narrow into wide result" [ 64; 10_000 ] (Bitset.elements wide)

let test_union_trailing_zero_growth () =
  (* src with a huge capacity but only low set bits must not grow dst:
     union_into sizes dst to src's highest *set* byte. *)
  let src = Bitset.create ~capacity:65_536 () in
  ignore (Bitset.add src 9);
  let dst = Bitset.of_list [ 1 ] in
  ignore (Bitset.union_into ~dst ~src);
  check "dst not grown to src capacity" true (Bitset.capacity dst < 1024);
  check_list "contents" [ 1; 9 ] (Bitset.elements dst)

let test_intersects () =
  check "disjoint" false
    (Bitset.intersects (Bitset.of_list [ 1; 64 ]) (Bitset.of_list [ 2; 65 ]));
  check "shared low bit" true
    (Bitset.intersects (Bitset.of_list [ 3 ]) (Bitset.of_list [ 3; 999 ]));
  check "shared bit at word edge" true
    (Bitset.intersects (Bitset.of_list [ 64 ]) (Bitset.of_list [ 64 ]));
  check "shared bit beyond shorter capacity" false
    (Bitset.intersects (Bitset.of_list [ 1 ]) (Bitset.of_list [ 100_000 ]));
  check "empty vs empty" false
    (Bitset.intersects (Bitset.create ()) (Bitset.create ()));
  check "symmetric across capacities" true
    (Bitset.intersects (Bitset.of_list [ 100_000; 5 ]) (Bitset.of_list [ 5 ]))

let prop_intersects =
  QCheck.Test.make ~name:"intersects matches model" ~count:200
    QCheck.(pair (list (int_bound 300)) (list (int_bound 3000)))
    (fun (xs, ys) ->
      let a = Bitset.of_list xs and b = Bitset.of_list ys in
      Bitset.intersects a b = List.exists (fun x -> List.mem x ys) xs
      && Bitset.intersects a b = Bitset.intersects b a)

(* Properties against a reference implementation over int lists. *)
let test_union_cycle_capacity () =
  (* Regression: union cycles must not ping-pong the doubling growth into
     huge capacities (this once OOM-killed the Andersen BSP solver). *)
  let a = Bitset.of_list [ 100 ] and b = Bitset.of_list [ 200 ] in
  for _ = 1 to 60 do
    ignore (Bitset.union_into ~dst:a ~src:b);
    ignore (Bitset.union_into ~dst:b ~src:a)
  done;
  Alcotest.(check bool) "capacity stays proportional to members" true
    (Bitset.capacity a < 4096 && Bitset.capacity b < 4096);
  Alcotest.(check (list int)) "contents correct" [ 100; 200 ]
    (Bitset.elements a)

let prop_model =
  QCheck.Test.make ~name:"bitset agrees with a set model" ~count:200
    QCheck.(list (int_bound 300))
    (fun xs ->
      let t = Bitset.of_list xs in
      let model = List.sort_uniq compare xs in
      Bitset.elements t = model
      && Bitset.cardinal t = List.length model
      && List.for_all (Bitset.mem t) model)

let prop_union =
  QCheck.Test.make ~name:"union_into computes set union" ~count:200
    QCheck.(pair (list (int_bound 300)) (list (int_bound 3000)))
    (fun (xs, ys) ->
      let a = Bitset.of_list xs and b = Bitset.of_list ys in
      ignore (Bitset.union_into ~dst:a ~src:b);
      Bitset.elements a = List.sort_uniq compare (xs @ ys))

let prop_subset =
  QCheck.Test.make ~name:"subset matches model" ~count:200
    QCheck.(pair (list (int_bound 64)) (list (int_bound 64)))
    (fun (xs, ys) ->
      let a = Bitset.of_list xs and b = Bitset.of_list ys in
      Bitset.subset a b
      = List.for_all (fun x -> List.mem x ys) (List.sort_uniq compare xs))

let suite =
  ( "bitset",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "add/mem" `Quick test_add_mem;
      Alcotest.test_case "growth" `Quick test_growth;
      Alcotest.test_case "remove" `Quick test_remove;
      Alcotest.test_case "union" `Quick test_union;
      Alcotest.test_case "subset/equal" `Quick test_subset_equal;
      Alcotest.test_case "clear/copy" `Quick test_clear_copy;
      Alcotest.test_case "union cycle capacity" `Quick
        test_union_cycle_capacity;
      Alcotest.test_case "negative members" `Quick test_negative;
      Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
      Alcotest.test_case "union trailing-zero growth" `Quick
        test_union_trailing_zero_growth;
      Alcotest.test_case "intersects" `Quick test_intersects;
      QCheck_alcotest.to_alcotest prop_intersects;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_union;
      QCheck_alcotest.to_alcotest prop_subset;
    ] )
