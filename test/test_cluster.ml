(* Cluster primitives: the shard-affine variable map (rendezvous
   ownership, oversized-component splitting, drain stability), the
   failover state machine, and snapshot file/fetch plumbing. The
   router's end-to-end behaviour — failover replay over real processes —
   is covered by test/cluster_smoke.ml under `dune build @ci`. *)
module P = Parcfl

(* --------------------------- shard map ---------------------------- *)

(* 12 vars in 6 two-var components: below any split threshold, so every
   variable follows its root. *)
let even_roots = Array.init 12 (fun v -> v - (v mod 2))

let test_map_affinity () =
  let m = P.Shard_map.create ~n_shards:3 ~root_of:even_roots () in
  Alcotest.(check int) "no split" 0 (P.Shard_map.split_components m);
  for v = 0 to 11 do
    Alcotest.(check int)
      (Printf.sprintf "var %d follows its root" v)
      (P.Shard_map.home m (v - (v mod 2)))
      (P.Shard_map.home m v)
  done

let test_map_live_equals_home () =
  let m = P.Shard_map.create ~n_shards:4 ~root_of:even_roots () in
  let live = Array.make 4 true in
  for v = 0 to 11 do
    Alcotest.(check int) "all-live shard = home" (P.Shard_map.home m v)
      (P.Shard_map.shard m ~live v)
  done

(* Draining one shard moves exactly that shard's keys; everything else
   keeps its owner (the rendezvous property the router's re-routing
   depends on). *)
let test_map_drain_stability () =
  let root_of = Array.init 64 (fun v -> v - (v mod 2)) in
  let m = P.Shard_map.create ~n_shards:4 ~root_of () in
  let all = Array.make 4 true in
  let drained = Array.init 4 (fun s -> s <> 1) in
  Array.iteri
    (fun v _ ->
      let before = P.Shard_map.shard m ~live:all v in
      let after = P.Shard_map.shard m ~live:drained v in
      if before <> 1 then
        Alcotest.(check int)
          (Printf.sprintf "var %d unmoved by unrelated drain" v)
          before after
      else
        Alcotest.(check bool)
          (Printf.sprintf "var %d left the drained shard" v)
          true (after <> 1))
    root_of

(* One 40-var component among 10 singletons: mean size is ~4.5, so the
   big component is split per-variable and its members spread over the
   shards instead of pinning 80% of the map to one replica. *)
let outlier_roots =
  Array.init 50 (fun v -> if v < 40 then 0 else v)

let test_map_splits_outlier () =
  let m = P.Shard_map.create ~n_shards:4 ~root_of:outlier_roots () in
  Alcotest.(check int) "one split component" 1
    (P.Shard_map.split_components m);
  let shards = Array.make 4 0 in
  for v = 0 to 39 do
    shards.(P.Shard_map.home m v) <- shards.(P.Shard_map.home m v) + 1
  done;
  Alcotest.(check bool) "outlier members spread over >1 shard" true
    (Array.exists (fun c -> c > 0 && c < 40) shards);
  (* Sub-sharding is still drain-stable per variable. *)
  let all = Array.make 4 true in
  let dead = Array.init 4 (fun s -> s <> 0) in
  for v = 0 to 39 do
    let before = P.Shard_map.shard m ~live:all v in
    if before <> 0 then
      Alcotest.(check int) "split member unmoved" before
        (P.Shard_map.shard m ~live:dead v)
  done

let test_map_split_factor_override () =
  (* A huge factor disables splitting: the outlier follows its root and
     all 40 members share one owner. *)
  let m =
    P.Shard_map.create ~split_factor:1000.0 ~n_shards:4
      ~root_of:outlier_roots ()
  in
  Alcotest.(check int) "no split at factor 1000" 0
    (P.Shard_map.split_components m);
  let owner = P.Shard_map.home m 0 in
  for v = 1 to 39 do
    Alcotest.(check int) "member follows root" owner (P.Shard_map.home m v)
  done

let test_map_balanced_choice () =
  (* Two singleton components carrying all the load: a single seed may
     co-locate them, but the balanced scan must find a seed that puts
     them on different shards (busiest share 0.5). *)
  let root_of = [| 0; 1 |] and load = [| 100; 100 |] in
  let m = P.Shard_map.create_balanced ~n_shards:2 ~root_of ~load () in
  Alcotest.(check bool) "heavy keys separated" true
    (P.Shard_map.home m 0 <> P.Shard_map.home m 1);
  Alcotest.(check bool) "chosen seed within candidates" true
    (P.Shard_map.seed m >= 0 && P.Shard_map.seed m < 16);
  Alcotest.check_raises "load length mismatch"
    (Invalid_argument
       "Shard_map.create_balanced: load length disagrees with vars")
    (fun () ->
      ignore
        (P.Shard_map.create_balanced ~n_shards:2 ~root_of
           ~load:[| 1 |] ()));
  Alcotest.check_raises "no candidates"
    (Invalid_argument "Shard_map.create_balanced: candidates must be > 0")
    (fun () ->
      ignore
        (P.Shard_map.create_balanced ~candidates:0 ~n_shards:2 ~root_of
           ~load ()))

let test_map_sizes_and_errors () =
  let m = P.Shard_map.create ~n_shards:2 ~root_of:even_roots () in
  let live = Array.make 2 true in
  let sizes = P.Shard_map.shard_sizes m ~live in
  Alcotest.(check int) "sizes sum to vars" 12
    (Array.fold_left ( + ) 0 sizes);
  Alcotest.check_raises "no live shard"
    (Invalid_argument "Shard_map.owner_among: no live shard") (fun () ->
      ignore (P.Shard_map.shard m ~live:(Array.make 2 false) 0));
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Shard_map.home: variable out of range") (fun () ->
      ignore (P.Shard_map.home m 12));
  Alcotest.check_raises "mask size mismatch"
    (Invalid_argument "Shard_map.shard: live mask size mismatch") (fun () ->
      ignore (P.Shard_map.shard m ~live:(Array.make 3 true) 0))

(* --------------------------- rebalance ---------------------------- *)

(* Rebalancing against an observed profile two heavy components the
   incumbent seed co-locates: the re-scan must separate them, and the
   owner diff must name exactly the keys that moved. *)
let test_rebalance_improves_and_diff_is_exact () =
  let root_of = [| 0; 1 |] and load = [| 100; 100 |] in
  (* Find an incumbent seed that co-locates the two heavy components —
     the skew a static placement built against the wrong profile has. *)
  let rec colocated s =
    let m = P.Shard_map.create ~seed:s ~n_shards:2 ~root_of () in
    if P.Shard_map.home m 0 = P.Shard_map.home m 1 then m
    else colocated (s + 1)
  in
  let m = colocated 0 in
  Alcotest.(check (float 1e-9)) "incumbent is fully skewed" 1.0
    (P.Shard_map.busiest_share m ~load);
  let next = P.Shard_map.rebalance m ~load in
  Alcotest.(check (float 1e-9)) "rebalance separates the heavy keys" 0.5
    (P.Shard_map.busiest_share next ~load);
  let moved = P.Shard_map.diff_owners m next in
  Alcotest.(check bool) "something migrated" true (moved <> []);
  let all = Array.make 2 true in
  for v = 0 to 1 do
    let k = P.Shard_map.key m v in
    let was = P.Shard_map.shard m ~live:all v
    and is = P.Shard_map.shard next ~live:all v in
    if List.mem k moved then
      Alcotest.(check bool)
        (Printf.sprintf "moved key %d changed owner" k)
        true (was <> is)
    else
      Alcotest.(check int)
        (Printf.sprintf "unmoved key %d kept its owner" k)
        was is
  done

let test_rebalance_incumbent_stays () =
  (* A balanced map re-scanned against the profile it was built for
     cannot improve: strict-improvement keeps the incumbent seed, so
     nothing migrates — a no-op rebalance moves no state. *)
  let root_of = [| 0; 1 |] and load = [| 100; 100 |] in
  let m = P.Shard_map.create_balanced ~n_shards:2 ~root_of ~load () in
  let next = P.Shard_map.rebalance m ~load in
  Alcotest.(check int) "seed unchanged" (P.Shard_map.seed m)
    (P.Shard_map.seed next);
  Alcotest.(check (list int)) "no migration" []
    (P.Shard_map.diff_owners m next)

let test_rebalance_never_worse () =
  (* Whatever the profile, the re-scan's strict-improvement rule bounds
     it by the incumbent. *)
  let root_of = Array.init 16 (fun v -> v) in
  let load = Array.init 16 (fun v -> 1 + ((v * 7) mod 13)) in
  let m = P.Shard_map.create ~seed:9 ~n_shards:4 ~root_of () in
  let next = P.Shard_map.rebalance ~candidates:32 m ~load in
  Alcotest.(check bool) "never worse than the incumbent" true
    (P.Shard_map.busiest_share next ~load
    <= P.Shard_map.busiest_share m ~load)

let test_diff_owners_rejects_mismatch () =
  let a = P.Shard_map.create ~n_shards:2 ~root_of:even_roots () in
  Alcotest.(check int) "n_keys counts components" 6 (P.Shard_map.n_keys a);
  let b = P.Shard_map.create ~n_shards:3 ~root_of:even_roots () in
  Alcotest.check_raises "shard count mismatch"
    (Invalid_argument "Shard_map.diff_owners: shard counts differ")
    (fun () -> ignore (P.Shard_map.diff_owners a b));
  let c =
    P.Shard_map.create ~n_shards:2
      ~root_of:(Array.init 12 (fun v -> v))
      ()
  in
  Alcotest.check_raises "key space mismatch"
    (Invalid_argument "Shard_map.diff_owners: maps cover different keys")
    (fun () -> ignore (P.Shard_map.diff_owners a c))

(* --------------------------- federation --------------------------- *)

module E = P.Expo
module F = P.Cluster_federation
module J = P.Json

let test_federation_counters_sum_gauges_relabel () =
  let fam_of value gauge =
    [
      E.counter ~name:"parcfl_hits_total" ~help:"Hits." value;
      E.gauge ~name:"parcfl_queue_depth" ~help:"Depth." gauge;
    ]
  in
  match F.merge_families [ (0, fam_of 3.0 5.0); (2, fam_of 4.0 7.0) ] with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok fams ->
      let text = E.render fams in
      Alcotest.(check bool) "counters summed" true
        (let re = "parcfl_hits_total 7" in
         let rec find i =
           i + String.length re <= String.length text
           && (String.sub text i (String.length re) = re || find (i + 1))
         in
         find 0);
      (* Gauges survive per replica under a replica label, unsummed. *)
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "gauge kept: %s" needle)
            true
            (let rec find i =
               i + String.length needle <= String.length text
               && (String.sub text i (String.length needle) = needle
                  || find (i + 1))
             in
             find 0))
        [
          "parcfl_queue_depth{replica=\"0\"} 5";
          "parcfl_queue_depth{replica=\"2\"} 7";
        ]

let test_federation_histograms_sum () =
  (* Equal-length log2 bucket arrays sum pointwise... *)
  let h buckets =
    [
      E.histogram_of_log2 ~name:"parcfl_latency_us" ~help:"Latency."
        buckets;
    ]
  in
  (match F.merge_families [ (0, h [| 1; 2; 3 |]); (1, h [| 4; 0; 1 |]) ]
   with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok [ E.Histogram { series = [ s ]; _ } ] ->
      Alcotest.(check int) "total count sums" 11 s.E.h_count;
      Alcotest.(check (list (pair (float 1e-9) int)))
        "buckets sum cumulatively"
        [ (2.0, 5); (4.0, 7); (infinity, 11) ]
        s.E.h_buckets
  | Ok _ -> Alcotest.fail "expected one merged histogram series");
  (* ...and unequal bucket lists merge over the union of bounds with
     exact totals (replicas size their rings independently). *)
  match F.merge_families [ (0, h [| 2 |]); (1, h [| 1; 1; 1 |]) ] with
  | Error e -> Alcotest.failf "merge: %s" e
  | Ok [ E.Histogram { series = [ s ]; _ } ] ->
      Alcotest.(check int) "union total" 5 s.E.h_count;
      let total_bound, total = List.nth s.E.h_buckets (List.length s.E.h_buckets - 1) in
      Alcotest.(check bool) "+Inf closes the union" true
        (total_bound = infinity);
      Alcotest.(check int) "+Inf keeps totals exact" 5 total
  | Ok _ -> Alcotest.fail "expected one merged histogram series"

let test_federation_kind_mismatch_rejected () =
  let a = [ E.counter ~name:"parcfl_x" ~help:"X." 1.0 ] in
  let b = [ E.gauge ~name:"parcfl_x" ~help:"X." 1.0 ] in
  match F.merge_families [ (0, a); (1, b) ] with
  | Ok _ -> Alcotest.fail "kind mismatch must be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the family" true
        (let needle = "parcfl_x" in
         let rec find i =
           i + String.length needle <= String.length e
           && (String.sub e i (String.length needle) = needle
              || find (i + 1))
         in
         find 0)

let test_federation_stats_totals () =
  let stats served depth =
    J.Obj
      [
        ("served", J.Int served);
        ("queue_depth", J.Int depth);
        ("mode", J.String "demand");
      ]
  in
  let merged = F.merge_stats [ (0, stats 10 2); (1, stats 5 1) ] in
  (match J.member "replicas" merged with
  | Some (J.Int 2) -> ()
  | _ -> Alcotest.fail "replicas count");
  (match J.member "totals" merged with
  | Some totals -> (
      (match J.member "served" totals with
      | Some (J.Int 15) -> ()
      | _ -> Alcotest.fail "served sums");
      match J.member "mode" totals with
      | None -> ()
      | Some _ -> Alcotest.fail "non-numeric fields must not be summed")
  | None -> Alcotest.fail "totals present");
  match J.member "per_replica" merged with
  | Some (J.List [ _; _ ]) -> ()
  | _ -> Alcotest.fail "per-replica stats kept verbatim"

let test_federation_slowlog_order_and_limit () =
  let entry lat at = J.Obj [ ("latency_us", J.Float lat); ("at", J.Float at) ] in
  let merged =
    F.merge_slowlogs ~limit:3
      [
        (0, J.List [ entry 50.0 1.0; entry 10.0 2.0 ]);
        (1, J.List [ entry 90.0 3.0; entry 50.0 4.0 ]);
      ]
  in
  match merged with
  | J.List entries ->
      let lat e =
        match J.member "latency_us" e with
        | Some (J.Float f) -> f
        | _ -> Alcotest.fail "entry latency"
      in
      let replica e =
        match J.member "replica" e with
        | Some (J.Int i) -> i
        | _ -> Alcotest.fail "entry replica tag"
      in
      Alcotest.(check (list (float 1e-9)))
        "worst first, truncated to limit" [ 90.0; 50.0; 50.0 ]
        (List.map lat entries);
      (* The 50us tie breaks by newest [at]: replica 1's entry (at=4)
         precedes replica 0's (at=1). *)
      Alcotest.(check (list int)) "entries tagged with their replica"
        [ 1; 1; 0 ]
        (List.map replica entries)
  | _ -> Alcotest.fail "slowlog merge returns a list"

let test_federation_health () =
  (* All live replicas ok: the cluster is ok, no reasons. *)
  Alcotest.(check (pair bool (list string)))
    "all ok" (true, [])
    (F.merge_health [ (0, true, []); (1, true, []) ]);
  (* One degraded replica degrades the cluster; its reasons survive,
     tagged with the replica that reported them. *)
  let healthy, reasons =
    F.merge_health
      [ (0, true, []); (2, false, [ "worker 0 stalled"; "queue starvation" ]) ]
  in
  Alcotest.(check bool) "one bad replica flips the verdict" false healthy;
  Alcotest.(check (list string))
    "reasons tagged with their replica"
    [ "replica=\"2\": worker 0 stalled"; "replica=\"2\": queue starvation" ]
    reasons;
  (* No replies at all is not health — it is silence. *)
  Alcotest.(check bool) "empty gather is not healthy" false
    (fst (F.merge_health []));
  (* Drained-replica notes inform but never flip the verdict: drained
     replicas are not live, so their absence is expected. *)
  let healthy, reasons =
    F.merge_health ~drained:[ "replica 1 (127.0.0.1:7001) drained" ]
      [ (0, true, []) ]
  in
  Alcotest.(check bool) "drained notes keep the cluster ok" true healthy;
  Alcotest.(check (list string))
    "drained notes prepended"
    [ "replica 1 (127.0.0.1:7001) drained" ]
    reasons

(* ---------------------------- failover ---------------------------- *)

let test_failover_drain_and_readmit () =
  let f = P.Cluster_failover.create ~n:3 ~k_readmit:2 in
  Alcotest.(check int) "all live" 3 (P.Cluster_failover.n_live f);
  Alcotest.(check bool) "drain fires" true
    (P.Cluster_failover.force_drain f 1 = P.Cluster_failover.Drained_now);
  Alcotest.(check bool) "1 is down" false (P.Cluster_failover.is_live f 1);
  Alcotest.(check int) "two live" 2 (P.Cluster_failover.n_live f);
  (* One healthy poll is not enough at k_readmit = 2... *)
  Alcotest.(check bool) "first healthy poll: no readmit" true
    (P.Cluster_failover.observe f 1 ~healthy:true
    = P.Cluster_failover.Unchanged);
  (* ...a failure resets the streak... *)
  Alcotest.(check bool) "failed poll resets" true
    (P.Cluster_failover.observe f 1 ~healthy:false
    = P.Cluster_failover.Unchanged);
  Alcotest.(check bool) "restart streak" true
    (P.Cluster_failover.observe f 1 ~healthy:true
    = P.Cluster_failover.Unchanged);
  (* ...and the k-th consecutive success re-admits. *)
  Alcotest.(check bool) "second consecutive readmits" true
    (P.Cluster_failover.observe f 1 ~healthy:true
    = P.Cluster_failover.Readmitted);
  Alcotest.(check bool) "1 is back" true (P.Cluster_failover.is_live f 1)

let test_failover_healthy_live_noop () =
  let f = P.Cluster_failover.create ~n:2 ~k_readmit:3 in
  Alcotest.(check bool) "healthy live replica unchanged" true
    (P.Cluster_failover.observe f 0 ~healthy:true
    = P.Cluster_failover.Unchanged);
  Alcotest.(check bool) "unhealthy live replica drains" true
    (P.Cluster_failover.observe f 0 ~healthy:false
    = P.Cluster_failover.Drained_now);
  Alcotest.(check bool) "re-drain of a drained replica is a no-op" true
    (P.Cluster_failover.force_drain f 0 = P.Cluster_failover.Unchanged)

(* ---------------------------- snapshot ---------------------------- *)

let test_snapshot_file_roundtrip () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "parcfl_snap_test_%d" (Unix.getpid ()))
  in
  let text = "jmpsnap 1 gen=3\nfin 1 4 - 7\n" in
  (match P.Cluster_snapshot.save_file ~path text with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" e);
  (match P.Cluster_snapshot.load_file ~path with
  | Ok got -> Alcotest.(check string) "roundtrip" text got
  | Error e -> Alcotest.failf "load: %s" e);
  (match P.Cluster_snapshot.wait_for_file ~timeout_s:1.0 ~path () with
  | Ok got -> Alcotest.(check string) "wait sees it" text got
  | Error e -> Alcotest.failf "wait: %s" e);
  Sys.remove path;
  match P.Cluster_snapshot.wait_for_file ~timeout_s:0.2 ~poll_s:0.05 ~path ()
  with
  | Ok _ -> Alcotest.fail "wait on a missing file must time out"
  | Error _ -> ()

let suite =
  ( "cluster",
    [
      Alcotest.test_case "shard map affinity" `Quick test_map_affinity;
      Alcotest.test_case "shard map all-live = home" `Quick
        test_map_live_equals_home;
      Alcotest.test_case "shard map drain stability" `Quick
        test_map_drain_stability;
      Alcotest.test_case "shard map splits outliers" `Quick
        test_map_splits_outlier;
      Alcotest.test_case "shard map split factor" `Quick
        test_map_split_factor_override;
      Alcotest.test_case "shard map balanced seed choice" `Quick
        test_map_balanced_choice;
      Alcotest.test_case "shard map sizes and errors" `Quick
        test_map_sizes_and_errors;
      Alcotest.test_case "rebalance improves skew, diff exact" `Quick
        test_rebalance_improves_and_diff_is_exact;
      Alcotest.test_case "rebalance incumbent rule" `Quick
        test_rebalance_incumbent_stays;
      Alcotest.test_case "rebalance never worse" `Quick
        test_rebalance_never_worse;
      Alcotest.test_case "diff_owners key-space guard" `Quick
        test_diff_owners_rejects_mismatch;
      Alcotest.test_case "federation counters/gauges" `Quick
        test_federation_counters_sum_gauges_relabel;
      Alcotest.test_case "federation histograms" `Quick
        test_federation_histograms_sum;
      Alcotest.test_case "federation kind mismatch" `Quick
        test_federation_kind_mismatch_rejected;
      Alcotest.test_case "federation stats totals" `Quick
        test_federation_stats_totals;
      Alcotest.test_case "federation health verdict" `Quick
        test_federation_health;
      Alcotest.test_case "federation slowlog order" `Quick
        test_federation_slowlog_order_and_limit;
      Alcotest.test_case "failover drain/readmit" `Quick
        test_failover_drain_and_readmit;
      Alcotest.test_case "failover edge cases" `Quick
        test_failover_healthy_live_noop;
      Alcotest.test_case "snapshot file roundtrip" `Quick
        test_snapshot_file_roundtrip;
    ] )
