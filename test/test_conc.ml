(* Concurrency substrate: counters, sharded map, work queue, barrier,
   domain pool. Multi-domain tests use 2-4 domains; on a single core they
   still exercise the synchronisation paths through time slicing. *)
module Counter = Parcfl.Counter
module Work_queue = Parcfl.Work_queue
module Barrier = Parcfl.Barrier
module Domain_pool = Parcfl.Domain_pool

module Int_map = Parcfl.Sharded_map.Make (struct
  type t = int

  let equal = Int.equal
  let hash x = x * 0x9e3779b1 land max_int
end)

(* ----------------------------- counter ---------------------------- *)

let test_counter () =
  let c = Counter.create () in
  Counter.add c ~worker:0 5;
  Counter.add c ~worker:3 7;
  Counter.incr c ~worker:200 (* stripe wraps *);
  Alcotest.(check int) "sum" 13 (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_counter_parallel () =
  let c = Counter.create () in
  Domain_pool.with_pool ~threads:4 (fun pool ->
      Domain_pool.run pool (fun ~worker ->
          for _ = 1 to 10_000 do
            Counter.incr c ~worker
          done));
  Alcotest.(check int) "parallel sum" 40_000 (Counter.value c)

let test_counter_explicit_stripes () =
  (* One stripe still sums correctly (all workers collide on it); many
     stripes wrap worker ids. *)
  List.iter
    (fun stripes ->
      let c = Counter.create ~stripes () in
      Domain_pool.with_pool ~threads:4 (fun pool ->
          Domain_pool.run pool (fun ~worker ->
              for _ = 1 to 5_000 do
                Counter.incr c ~worker
              done));
      Alcotest.(check int)
        (Printf.sprintf "sum with %d stripes" stripes)
        20_000 (Counter.value c))
    [ 1; 3; 64 ]

(* --------------------------- sharded map -------------------------- *)

let test_map_basic () =
  let m = Int_map.create ~shards:4 () in
  Alcotest.(check bool) "fresh add" true (Int_map.add_if_absent m 1 "a" = `Added);
  (match Int_map.add_if_absent m 1 "b" with
  | `Present "a" -> ()
  | _ -> Alcotest.fail "expected `Present a");
  Alcotest.(check (option string)) "find" (Some "a") (Int_map.find_opt m 1);
  Alcotest.(check bool) "mem" true (Int_map.mem m 1);
  Int_map.update m 2 (function None -> Some "x" | Some _ -> None);
  Alcotest.(check (option string)) "update insert" (Some "x") (Int_map.find_opt m 2);
  Int_map.update m 2 (fun _ -> None);
  Alcotest.(check (option string)) "update remove" None (Int_map.find_opt m 2);
  Int_map.remove m 1;
  Alcotest.(check int) "length" 0 (Int_map.length m)

let test_map_find_map () =
  let m = Int_map.create ~shards:2 () in
  ignore (Int_map.add_if_absent m 7 "seven");
  Alcotest.(check (option int)) "projects under the lock" (Some 5)
    (Int_map.find_map m 7 String.length);
  Alcotest.(check (option int)) "absent key" None
    (Int_map.find_map m 8 String.length)

let test_map_fold_clear () =
  let m = Int_map.create () in
  for i = 0 to 99 do
    ignore (Int_map.add_if_absent m i (string_of_int i))
  done;
  Alcotest.(check int) "length" 100 (Int_map.length m);
  let sum = Int_map.fold (fun k _ acc -> acc + k) m 0 in
  Alcotest.(check int) "fold" 4950 sum;
  Int_map.clear m;
  Alcotest.(check int) "cleared" 0 (Int_map.length m)

let test_map_size () =
  let m = Int_map.create ~shards:4 () in
  Alcotest.(check int) "empty" 0 (Int_map.size m);
  for i = 0 to 99 do
    ignore (Int_map.add_if_absent m i (string_of_int i))
  done;
  (* Quiescent, so the approximate count is exact and agrees with length. *)
  Alcotest.(check int) "size" 100 (Int_map.size m);
  Alcotest.(check int) "size = length" (Int_map.length m) (Int_map.size m);
  Int_map.remove m 0;
  Alcotest.(check int) "after remove" 99 (Int_map.size m);
  Int_map.clear m;
  Alcotest.(check int) "after clear" 0 (Int_map.size m)

let test_map_race () =
  (* Hammer add_if_absent from 4 domains: exactly one writer must win per
     key and everyone must agree on the winner afterwards. *)
  let m = Int_map.create ~shards:8 () in
  let winners = Array.make 1000 (-1) in
  let lock = Mutex.create () in
  Domain_pool.with_pool ~threads:4 (fun pool ->
      Domain_pool.run pool (fun ~worker ->
          for k = 0 to 999 do
            match Int_map.add_if_absent m k worker with
            | `Added ->
                Mutex.lock lock;
                if winners.(k) <> -1 then winners.(k) <- -2 (* double add! *)
                else winners.(k) <- worker;
                Mutex.unlock lock
            | `Present _ -> ()
          done));
  Array.iteri
    (fun k w ->
      if w = -2 then Alcotest.failf "key %d added twice" k;
      if w = -1 then Alcotest.failf "key %d never added" k;
      match Int_map.find_opt m k with
      | Some v when v = w -> ()
      | Some v -> Alcotest.failf "key %d: winner %d but stored %d" k w v
      | None -> Alcotest.failf "key %d lost" k)
    winners

(* --------------------------- work queue --------------------------- *)

let slice_to_list (items, start, len) =
  Array.to_list (Array.sub items start len)

let test_queue_order () =
  let q = Work_queue.of_list [ 10; 20; 30 ] in
  Alcotest.(check int) "remaining" 3 (Work_queue.remaining q);
  Alcotest.(check (option int)) "pop1" (Some 10) (Work_queue.pop q);
  Alcotest.(check (list int))
    "pop_many" [ 20; 30 ]
    (slice_to_list (Work_queue.pop_many q 5));
  Alcotest.(check (option int)) "drained" None (Work_queue.pop q);
  Alcotest.(check (list int))
    "pop_many empty" []
    (slice_to_list (Work_queue.pop_many q 2));
  let q2 = Work_queue.of_list [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int))
    "pop_many bounded" [ 1; 2 ]
    (slice_to_list (Work_queue.pop_many q2 2));
  Alcotest.(check (list int))
    "pop_many n<=0" []
    (slice_to_list (Work_queue.pop_many q2 0));
  Alcotest.(check (list int))
    "pop_many rest" [ 3; 4; 5 ]
    (slice_to_list (Work_queue.pop_many q2 9))

let test_queue_parallel () =
  let n = 10_000 in
  let q = Work_queue.create (Array.init n (fun i -> i)) in
  let seen = Array.make n 0 in
  Domain_pool.with_pool ~threads:4 (fun pool ->
      Domain_pool.run pool (fun ~worker:_ ->
          let rec loop () =
            match Work_queue.pop q with
            | None -> ()
            | Some i ->
                (* Each index is handed out exactly once, so unsynchronised
                   increments cannot race. *)
                seen.(i) <- seen.(i) + 1;
                loop ()
          in
          loop ()));
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "item %d served %d times" i c)
    seen

(* ----------------------------- barrier ---------------------------- *)

let test_barrier () =
  let parties = 4 in
  let b = Barrier.create parties in
  let phase = Atomic.make 0 in
  let errors = Atomic.make 0 in
  Domain_pool.with_pool ~threads:parties (fun pool ->
      Domain_pool.run pool (fun ~worker:_ ->
          for round = 1 to 5 do
            ignore (Atomic.fetch_and_add phase 1);
            Barrier.wait b;
            (* After the barrier every party of this round has bumped. *)
            if Atomic.get phase < round * parties then
              ignore (Atomic.fetch_and_add errors 1);
            Barrier.wait b
          done));
  Alcotest.(check int) "no phase violations" 0 (Atomic.get errors)

(* --------------------------- domain pool --------------------------- *)

let test_pool_runs_all () =
  let hit = Array.make 3 false in
  Domain_pool.with_pool ~threads:3 (fun pool ->
      Domain_pool.run pool (fun ~worker -> hit.(worker) <- true);
      Alcotest.(check (array bool)) "all workers ran" [| true; true; true |] hit;
      (* Reusable for a second region. *)
      let count = Atomic.make 0 in
      Domain_pool.run pool (fun ~worker:_ ->
          ignore (Atomic.fetch_and_add count 1));
      Alcotest.(check int) "second region" 3 (Atomic.get count))

let test_pool_exception () =
  let raised =
    try
      Domain_pool.with_pool ~threads:2 (fun pool ->
          Domain_pool.run pool (fun ~worker ->
              if worker = 1 then failwith "boom");
          false)
    with Failure msg when msg = "boom" -> true
  in
  Alcotest.(check bool) "worker exception propagates" true raised

let test_pool_single_thread () =
  Domain_pool.with_pool ~threads:1 (fun pool ->
      let r = ref (-1) in
      Domain_pool.run pool (fun ~worker -> r := worker);
      Alcotest.(check int) "runs inline" 0 !r)

let suite =
  ( "conc",
    [
      Alcotest.test_case "counter" `Quick test_counter;
      Alcotest.test_case "counter parallel" `Quick test_counter_parallel;
      Alcotest.test_case "counter explicit stripes" `Quick
        test_counter_explicit_stripes;
      Alcotest.test_case "sharded map basic" `Quick test_map_basic;
      Alcotest.test_case "sharded map find_map" `Quick test_map_find_map;
      Alcotest.test_case "sharded map fold/clear" `Quick test_map_fold_clear;
      Alcotest.test_case "sharded map size" `Quick test_map_size;
      Alcotest.test_case "sharded map race" `Quick test_map_race;
      Alcotest.test_case "work queue order" `Quick test_queue_order;
      Alcotest.test_case "work queue parallel" `Quick test_queue_parallel;
      Alcotest.test_case "barrier" `Quick test_barrier;
      Alcotest.test_case "pool runs all workers" `Quick test_pool_runs_all;
      Alcotest.test_case "pool exception" `Quick test_pool_exception;
      Alcotest.test_case "pool single thread" `Quick test_pool_single_thread;
    ] )
