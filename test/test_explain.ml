(* Answer provenance, end to end.

   Three layers under test. (1) Stable edge ids: the dense CSR numbering
   round-trips through edge_id/edge_of_id on real and random graphs —
   witnesses and the index speak this currency, so it must be total and
   self-inverse. (2) The differential replay suite: every witness the
   solver returns must re-derive its answer edge-by-edge against the
   frozen PAG (Witness.replay), on every workload profile and on random
   edge soups, context-insensitive and -sensitive — a witness that cannot
   be machine-checked is a story, not provenance. (3) The service tier:
   the `explain` verb's wire chain, the bounded witness/dependency index
   behind it (byte budget, LRU shedding, generation hygiene, reverse
   lookup), and the satellite fix that oracle-tier answers — which never
   form a batch — report zero queue/batch stamps in slowlog and spans. *)

module P = Parcfl
module Pag = P.Pag
module Query = P.Query
module Solver = P.Solver
module W = P.Solver.Witness
module Proto = P.Svc_protocol
module Json = P.Json
module Prov = P.Provenance

let tiny = lazy (Option.get (P.Suite.build_by_name "tiny"))

let session ?(config = P.Config.default) pag =
  Solver.make_session ~config ~ctx_store:(P.Ctx.create_store ()) pag

(* ------------------------- stable edge ids ------------------------- *)

let check_edge_ids pag label =
  let seen = Hashtbl.create 256 in
  let count = ref 0 in
  Pag.iter_edges pag (fun e ->
      incr count;
      match Pag.edge_id pag e with
      | None -> Alcotest.failf "%s: iterated edge has no id" label
      | Some id ->
          if id < 0 || id >= Pag.n_edges pag then
            Alcotest.failf "%s: id %d outside [0, %d)" label id
              (Pag.n_edges pag);
          (* Duplicate parallel edges share the first occurrence's id;
             distinct edges must never collide. *)
          (match Hashtbl.find_opt seen id with
          | Some e' when e' <> e ->
              Alcotest.failf "%s: id %d names two distinct edges" label id
          | _ -> Hashtbl.replace seen id e);
          if Pag.edge_of_id pag id <> e then
            Alcotest.failf "%s: edge_of_id does not invert edge_id" label;
          if not (Pag.has_edge pag e) then
            Alcotest.failf "%s: iterated edge fails has_edge" label);
  Alcotest.(check int)
    (label ^ ": iter_edges covers n_edges")
    (Pag.n_edges pag) !count;
  (* Every id decodes, and decoding is stable under re-encoding. *)
  for id = 0 to Pag.n_edges pag - 1 do
    let e = Pag.edge_of_id pag id in
    match Pag.edge_id pag e with
    | Some id' when id' <= id -> ()
    | Some id' ->
        Alcotest.failf "%s: id %d re-encodes later as %d" label id id'
    | None -> Alcotest.failf "%s: decoded edge %d has no id" label id
  done;
  match Pag.edge_of_id pag (Pag.n_edges pag) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: out-of-range id accepted" label

let test_edge_ids_tiny () =
  check_edge_ids (Lazy.force tiny).P.Suite.pag "tiny"

(* Same edge-soup generator as test_oracle_tier.ml: 8 vars, 5 objects,
   every relation represented. *)
let random_pag_gen =
  QCheck.Gen.(
    let small = int_bound 7 in
    list_size (int_bound 24)
      (oneof
         [
           map2 (fun a b -> `New (a, b)) small (int_bound 4);
           map2 (fun a b -> `Assign (a, b)) small small;
           map2 (fun a b -> `Gassign (a, b)) small small;
           map3 (fun a b f -> `Load (a, b, f)) small small (int_bound 2);
           map3 (fun a f b -> `Store (a, f, b)) small (int_bound 2) small;
           map3 (fun a i b -> `Param (a, i, b)) small (int_bound 3) small;
           map3 (fun a i b -> `Ret (a, i, b)) small (int_bound 3) small;
         ]))

let build_random edges =
  let module B = Pag.Build in
  let b = B.create () in
  let vars = Array.init 8 (fun i -> B.add_var b (Printf.sprintf "v%d" i)) in
  let objects = Array.init 5 (fun i -> B.add_obj b (Printf.sprintf "o%d" i)) in
  List.iter
    (fun e ->
      match e with
      | `New (x, o) -> B.new_edge b ~dst:vars.(x) objects.(o)
      | `Assign (x, y) -> B.assign b ~dst:vars.(x) ~src:vars.(y)
      | `Gassign (x, y) -> B.assign_global b ~dst:vars.(x) ~src:vars.(y)
      | `Load (x, p, f) -> B.load b ~dst:vars.(x) ~base:vars.(p) f
      | `Store (q, f, y) -> B.store b ~base:vars.(q) f ~src:vars.(y)
      | `Param (x, i, y) -> B.param b ~dst:vars.(x) ~site:i ~src:vars.(y)
      | `Ret (x, i, y) -> B.ret b ~dst:vars.(x) ~site:i ~src:vars.(y))
    edges;
  B.freeze b

let prop_edge_ids_random =
  QCheck.Test.make ~name:"edge ids round-trip on random PAGs" ~count:100
    (QCheck.make random_pag_gen)
    (fun edges ->
      check_edge_ids (build_random edges) "random";
      true)

(* --------------------- differential replay ------------------------- *)

(* For each queried variable: solve, then explain every object of the
   answer; each witness must replay against the frozen graph and resolve
   to edge ids. Returns how many chains were verified. *)
let replay_all ~config ~label pag queries =
  let s = session ~config pag in
  let checked = ref 0 in
  List.iter
    (fun v ->
      match (Solver.points_to s v).Query.result with
      | Query.Out_of_budget -> ()
      | Query.Points_to pairs ->
          List.iter
            (fun (o, _) ->
              match Solver.explain s v o with
              | None -> () (* traced re-run exhausted its budget *)
              | Some w ->
                  incr checked;
                  (match W.replay pag ~query:v w with
                  | Ok () -> ()
                  | Error e ->
                      Alcotest.failf "%s: witness for (#%d, o%d) fails replay: %s"
                        label v o e);
                  (match W.edge_ids pag w with
                  | Ok ids ->
                      if List.length ids = 0 then
                        Alcotest.failf "%s: empty edge chain for (#%d, o%d)"
                          label v o;
                      List.iter
                        (fun id ->
                          if id < 0 || id >= Pag.n_edges pag then
                            Alcotest.failf "%s: chain id %d out of range"
                              label id)
                        ids
                  | Error e ->
                      Alcotest.failf "%s: chain for (#%d, o%d) has no ids: %s"
                        label v o e);
                  if W.depth w < 1 then
                    Alcotest.failf "%s: depth < 1 for (#%d, o%d)" label v o)
            pairs)
    queries;
  !checked

(* Every workload profile, both sensitivities, a bounded slice of each
   profile's query set — the full sets are a bench, not a test. *)
let test_replay_all_profiles () =
  let total = ref 0 in
  List.iter
    (fun p ->
      let b = P.Suite.build p in
      let queries =
        Array.to_list b.P.Suite.queries
        |> List.sort_uniq compare
        |> List.filteri (fun i _ -> i < 12)
      in
      let pag = b.P.Suite.pag in
      total :=
        !total
        + replay_all
            ~config:{ P.Config.default with context_sensitive = false }
            ~label:(p.P.Profile.name ^ "/ci") pag queries
        + replay_all ~config:P.Config.default
            ~label:(p.P.Profile.name ^ "/cs") pag queries)
    P.Profile.all;
  Alcotest.(check bool)
    "the suite verified a meaningful number of chains" true (!total > 100)

let prop_replay_random =
  QCheck.Test.make ~name:"witnesses replay on random PAGs (CI and CS)"
    ~count:80
    (QCheck.make random_pag_gen)
    (fun edges ->
      let pag = build_random edges in
      let all_vars = List.init (Pag.n_vars pag) Fun.id in
      List.iter
        (fun cs ->
          let label = if cs then "random/cs" else "random/ci" in
          ignore
            (replay_all
               ~config:{ P.Config.default with context_sensitive = cs }
               ~label pag all_vars))
        [ false; true ];
      true)

(* explain_deps: the footprint comes from the same traced run, so the
   witness's own chain ids must all be inside it, and the array must be
   sorted strictly ascending. *)
let test_deps_cover_witness () =
  let b = Lazy.force tiny in
  let pag = b.P.Suite.pag in
  let s = session pag in
  let covered = ref 0 in
  Array.iter
    (fun v ->
      match (Solver.points_to s v).Query.result with
      | Query.Out_of_budget -> ()
      | Query.Points_to pairs ->
          List.iter
            (fun (o, _) ->
              match Solver.explain_deps s v o with
              | None, _ -> ()
              | Some w, deps ->
                  incr covered;
                  let n = Array.length deps in
                  for i = 1 to n - 1 do
                    if deps.(i - 1) >= deps.(i) then
                      Alcotest.fail "deps not sorted strictly ascending"
                  done;
                  Array.iter
                    (fun id -> ignore (Pag.edge_of_id pag id))
                    deps;
                  let mem id =
                    let rec go lo hi =
                      lo < hi
                      &&
                      let mid = (lo + hi) / 2 in
                      if deps.(mid) = id then true
                      else if deps.(mid) < id then go (mid + 1) hi
                      else go lo mid
                    in
                    go 0 n
                  in
                  (match W.edge_ids pag w with
                  | Ok ids ->
                      List.iter
                        (fun id ->
                          if not (mem id) then
                            Alcotest.failf
                              "chain edge %d missing from the footprint" id)
                        ids
                  | Error e -> Alcotest.failf "chain has no ids: %s" e))
            pairs)
    b.P.Suite.queries;
  Alcotest.(check bool) "some footprints checked" true (!covered > 0)

(* ----------------------- provenance index -------------------------- *)

let entry_bytes n = 48 + (8 * n)

let test_index_basics () =
  (match Prov.create ~byte_budget:0 ~generation:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero byte budget accepted");
  let t = Prov.create ~byte_budget:4096 ~generation:3 () in
  Alcotest.(check int) "fresh index is empty" 0 (Prov.entries t);
  Alcotest.(check int) "fresh index holds no bytes" 0 (Prov.bytes t);
  Alcotest.(check int) "budget visible" 4096 (Prov.byte_budget t);
  Alcotest.(check int) "generation visible" 3 (Prov.generation t);
  Alcotest.(check bool) "record accepts a footprint" true
    (Prov.record t ~var:7 [| 1; 4; 9 |]);
  Alcotest.(check bool) "membership" true (Prov.mem t ~var:7);
  Alcotest.(check bool) "absent var" false (Prov.mem t ~var:8);
  (match Prov.deps t ~var:7 with
  | Some d -> Alcotest.(check (array int)) "deps round-trip" [| 1; 4; 9 |] d
  | None -> Alcotest.fail "recorded footprint lost");
  Alcotest.(check int) "bytes accounted" (entry_bytes 3) (Prov.bytes t);
  (* Replacing an entry swaps its accounting instead of adding to it. *)
  Alcotest.(check bool) "replace accepted" true
    (Prov.record t ~var:7 [| 2; 3 |]);
  Alcotest.(check int) "entries stable on replace" 1 (Prov.entries t);
  Alcotest.(check int) "bytes follow the new footprint" (entry_bytes 2)
    (Prov.bytes t);
  (* Empty footprints carry nothing to invalidate on — refused. *)
  Alcotest.(check bool) "empty footprint refused" false
    (Prov.record t ~var:9 [||]);
  Alcotest.(check bool) "refusal did not insert" false (Prov.mem t ~var:9);
  Prov.clear t;
  Alcotest.(check int) "clear empties" 0 (Prov.entries t);
  Alcotest.(check int) "clear releases bytes" 0 (Prov.bytes t);
  Alcotest.(check int) "clear is not a shed" 0 (Prov.sheds t)

let test_index_shedding () =
  (* Budget fits exactly two three-id entries. *)
  let budget = 2 * entry_bytes 3 in
  let t = Prov.create ~byte_budget:budget ~generation:0 () in
  Alcotest.(check bool) "a" true (Prov.record t ~var:1 [| 0; 2; 4 |]);
  Alcotest.(check bool) "b" true (Prov.record t ~var:2 [| 1; 3; 5 |]);
  Alcotest.(check int) "both resident" 2 (Prov.entries t);
  (* Touch var 1 so var 2 is the LRU victim. *)
  ignore (Prov.deps t ~var:1);
  Alcotest.(check bool) "c forces a shed" true
    (Prov.record t ~var:3 [| 2; 4; 6 |]);
  Alcotest.(check bool) "LRU victim gone" false (Prov.mem t ~var:2);
  Alcotest.(check bool) "recently-used survivor" true (Prov.mem t ~var:1);
  Alcotest.(check bool) "newcomer resident" true (Prov.mem t ~var:3);
  Alcotest.(check int) "one shed counted" 1 (Prov.sheds t);
  Alcotest.(check bool) "fits the budget" true (Prov.bytes t <= budget);
  (* A footprint wider than the whole budget is refused, counted. *)
  let huge = Array.init ((budget / 8) + 8) Fun.id in
  Alcotest.(check bool) "oversize refused" false (Prov.record t ~var:4 huge);
  Alcotest.(check bool) "refused footprint absent" false (Prov.mem t ~var:4);
  Alcotest.(check int) "refusal counted as shed" 2 (Prov.sheds t);
  Alcotest.(check bool) "residents survive a refusal" true
    (Prov.mem t ~var:1 && Prov.mem t ~var:3)

let test_index_reverse_and_generation () =
  let t = Prov.create ~byte_budget:4096 ~generation:1 () in
  ignore (Prov.record t ~var:5 [| 1; 3; 8 |]);
  ignore (Prov.record t ~var:2 [| 3; 4 |]);
  ignore (Prov.record t ~var:9 [| 0; 8 |]);
  Alcotest.(check (list int)) "edge 3 supports 2 and 5" [ 2; 5 ]
    (Prov.keys_touching t ~edge_id:3);
  Alcotest.(check (list int)) "edge 8 supports 5 and 9" [ 5; 9 ]
    (Prov.keys_touching t ~edge_id:8);
  Alcotest.(check (list int)) "untouched edge supports nothing" []
    (Prov.keys_touching t ~edge_id:7);
  (* iter visits every entry exactly once. *)
  let seen = ref [] in
  Prov.iter (fun v _ -> seen := v :: !seen) t;
  Alcotest.(check (list int)) "iter covers the index" [ 2; 5; 9 ]
    (List.sort compare !seen);
  (* Same generation: no-op. New generation: stale postings dropped. *)
  Prov.note_generation t 1;
  Alcotest.(check int) "same generation keeps entries" 3 (Prov.entries t);
  Prov.note_generation t 2;
  Alcotest.(check int) "new generation clears" 0 (Prov.entries t);
  Alcotest.(check int) "generation adopted" 2 (Prov.generation t);
  Alcotest.(check int) "generation clear is not a shed" 0 (Prov.sheds t)

(* ----------------------- service explain verb ---------------------- *)

let service_config =
  {
    P.Service.default_config with
    P.Service.threads = 1;
    max_batch = 8;
    max_wait = 0.0;
  }

let make_service ?(config = service_config) () =
  let b = Lazy.force tiny in
  (b, P.Service.create ~config ~type_level:b.P.Suite.type_level b.P.Suite.pag)

let submit_collect svc req =
  let got = ref None in
  P.Service.submit svc ~now:0.0 ~respond:(fun r -> got := Some r) req;
  ignore (P.Service.pump ~force:true svc ~now:0.0);
  P.Service.drain svc ~now:0.0;
  match !got with
  | Some r -> r
  | None -> Alcotest.fail "request got no response"

(* A (var, obj) fact of the tiny bench, from a library-side solve. *)
let known_fact pag queries =
  let s = session pag in
  let found = ref None in
  Array.iter
    (fun v ->
      if !found = None then
        match (Solver.points_to s v).Query.result with
        | Query.Points_to ((o, _) :: _) -> found := Some (v, o)
        | _ -> ())
    queries;
  match !found with
  | Some f -> f
  | None -> Alcotest.fail "tiny bench has no derivable fact"

let counter_value fams name =
  List.fold_left
    (fun acc f ->
      match f with
      | P.Expo.Counter { name = n; samples; _ } when n = name ->
          List.fold_left (fun a s -> a +. s.P.Expo.value) acc samples
      | _ -> acc)
    0.0 fams

let stats_section stats name =
  match stats with
  | Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some (Json.Obj s) -> s
      | _ -> Alcotest.failf "stats payload lacks a %S object" name)
  | _ -> Alcotest.fail "stats payload is not an object"

let stats_int fields name =
  match List.assoc_opt name fields with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "witness stats lack integer %S" name

let test_service_explain () =
  let b, svc = make_service () in
  let pag = b.P.Suite.pag in
  let v, o = known_fact pag b.P.Suite.queries in
  let var = Printf.sprintf "#%d" v and obj = Printf.sprintf "#%d" o in
  (match submit_collect svc (Proto.Explain { id = 1; var; obj }) with
  | Proto.Explain_reply
      { id = 1; var = vn; obj = on; found = true; depth; latency_us; chain }
    ->
      Alcotest.(check string) "variable name echoed"
        (Pag.var_name pag v) vn;
      Alcotest.(check string) "object name echoed" (Pag.obj_name pag o) on;
      Alcotest.(check bool) "depth positive" true (depth >= 1);
      Alcotest.(check bool) "latency non-negative" true (latency_us >= 0.0);
      (match chain with
      | Json.List (_ :: _ as edges) ->
          (* Every chain element is an edge object with a kind, a
             resolvable stable id and a ctx list; the chain closes with
             the allocation. *)
          let last = List.nth edges (List.length edges - 1) in
          (match last with
          | Json.Obj fields ->
              (match List.assoc_opt "kind" fields with
              | Some (Json.String "new") -> ()
              | _ -> Alcotest.fail "chain does not close with a new edge")
          | _ -> Alcotest.fail "chain element is not an object");
          List.iter
            (fun e ->
              match e with
              | Json.Obj fields ->
                  (match List.assoc_opt "kind" fields with
                  | Some (Json.String k) ->
                      if
                        not
                          (List.mem k
                             [
                               "new"; "assign"; "assign_g"; "load"; "store";
                               "param"; "ret";
                             ])
                      then Alcotest.failf "unknown edge kind %S" k
                  | _ -> Alcotest.fail "edge without a kind");
                  (match List.assoc_opt "edge" fields with
                  | Some (Json.Int id) ->
                      ignore (Pag.edge_of_id pag id)
                  | Some Json.Null -> ()
                  | _ -> Alcotest.fail "edge without a stable id");
                  (match List.assoc_opt "ctx" fields with
                  | Some (Json.List _) -> ()
                  | _ -> Alcotest.fail "edge without context frames")
              | _ -> Alcotest.fail "chain element is not an object")
            edges
      | _ -> Alcotest.fail "found answer carries no chain")
  | r -> Alcotest.failf "unexpected reply %s" (Proto.response_to_string r));
  (* The index now holds the answer's footprint. *)
  let idx = P.Service.witness_index svc in
  Alcotest.(check int) "one indexed answer" 1 (Prov.entries idx);
  (match Prov.deps idx ~var:v with
  | Some deps ->
      Alcotest.(check bool) "footprint non-empty" true
        (Array.length deps > 0);
      Alcotest.(check (list int)) "reverse map finds the answer" [ v ]
        (Prov.keys_touching idx ~edge_id:deps.(0))
  | None -> Alcotest.fail "explained answer not indexed");
  (* A non-fact misses; the reply still names both endpoints. *)
  let missing =
    let s = session pag in
    let rec hunt o =
      if o >= Pag.n_objs pag then None
      else
        match (Solver.points_to s v).Query.result with
        | Query.Points_to pairs when not (List.mem_assoc o pairs) -> Some o
        | _ -> hunt (o + 1)
    in
    hunt 0
  in
  (match missing with
  | None -> () (* v points to every object — nothing to miss on *)
  | Some o' ->
      (match
         submit_collect svc
           (Proto.Explain
              { id = 2; var; obj = Printf.sprintf "#%d" o' })
       with
      | Proto.Explain_reply { id = 2; found = false; depth = 0; chain; _ } ->
          Alcotest.(check bool) "miss carries an empty chain" true
            (chain = Json.List [])
      | r ->
          Alcotest.failf "unexpected miss reply %s"
            (Proto.response_to_string r)));
  (* Unknown endpoints are wire errors, not crashes. *)
  (match submit_collect svc (Proto.Explain { id = 3; var = "nope"; obj }) with
  | Proto.Error { id = Some 3; _ } -> ()
  | r -> Alcotest.failf "unknown var: %s" (Proto.response_to_string r));
  (match submit_collect svc (Proto.Explain { id = 4; var; obj = "nope" }) with
  | Proto.Error { id = Some 4; _ } -> ()
  | r -> Alcotest.failf "unknown obj: %s" (Proto.response_to_string r));
  (* Metrics: the counters moved and the witness families render. *)
  let m = P.Service.metrics svc in
  Alcotest.(check int) "one explain hit" 1
    (P.Svc_metrics.get m P.Svc_metrics.Explain_ok);
  (match P.Expo.parse_families (P.Service.metrics_text svc) with
  | Ok fams ->
      Alcotest.(check bool) "witness gauge exported" true
        (List.exists
           (fun f -> P.Expo.family_name f = "parcfl_witness_indexed_answers")
           fams);
      Alcotest.(check bool) "chain-depth histogram exported" true
        (List.exists
           (fun f -> P.Expo.family_name f = "parcfl_witness_chain_depth")
           fams);
      Alcotest.(check bool) "explain-latency histogram exported" true
        (List.exists
           (fun f ->
             P.Expo.family_name f = "parcfl_witness_explain_latency_us")
           fams);
      Alcotest.(check (float 0.0)) "no sheds under the default budget" 0.0
        (counter_value fams "parcfl_witness_sheds_total")
  | Error e -> Alcotest.failf "exposition does not parse: %s" e);
  (* Stats payload: the witness section the dashboards scrape. *)
  let w = stats_section (P.Service.metrics_json svc) "witness" in
  Alcotest.(check int) "stats: indexed answers" 1 (stats_int w "entries");
  Alcotest.(check bool) "stats: postings bytes positive" true
    (stats_int w "bytes" > 0);
  Alcotest.(check int) "stats: sheds" 0 (stats_int w "sheds");
  Alcotest.(check int) "stats: explains_ok" 1 (stats_int w "explains_ok");
  Alcotest.(check bool) "stats: budget echoed" true
    (stats_int w "byte_budget" > 0);
  P.Service.shutdown svc

(* The wire chain and the library witness describe the same derivation:
   equal depth, and the wire edge ids replay through Witness.edge_ids. *)
let test_wire_matches_library () =
  let b, svc = make_service () in
  let pag = b.P.Suite.pag in
  let v, o = known_fact pag b.P.Suite.queries in
  let req =
    Proto.Explain
      { id = 9; var = Printf.sprintf "#%d" v; obj = Printf.sprintf "#%d" o }
  in
  match submit_collect svc req with
  | Proto.Explain_reply { found = true; depth; chain = Json.List edges; _ }
    -> (
      let s = session pag in
      match Solver.explain s v o with
      | None -> Alcotest.fail "library explain lost the fact"
      | Some w ->
          Alcotest.(check int) "wire depth = library depth" (W.depth w) depth;
          let wire_ids =
            List.filter_map
              (fun e ->
                match e with
                | Json.Obj fields -> (
                    match List.assoc_opt "edge" fields with
                    | Some (Json.Int id) -> Some id
                    | _ -> None)
                | _ -> None)
              edges
          in
          (match W.edge_ids pag w with
          | Ok ids ->
              Alcotest.(check (list int)) "wire ids = library chain ids" ids
                wire_ids
          | Error e -> Alcotest.failf "library chain has no ids: %s" e);
          P.Service.shutdown svc)
  | r ->
      Alcotest.failf "unexpected reply %s" (Proto.response_to_string r)

(* ------------- oracle tier: zero batch stamps (bugfix) ------------- *)

let test_oracle_tier_zero_stamps () =
  let b = Lazy.force tiny in
  let config =
    {
      service_config with
      P.Service.context_sensitive = false;
      oracle = true;
      slowlog_capacity = 8;
    }
  in
  let svc =
    P.Service.create ~config ~type_level:b.P.Suite.type_level b.P.Suite.pag
  in
  let got = ref None in
  P.Service.submit svc ~now:0.0
    ~respond:(fun r -> got := Some r)
    (Proto.Query
       {
         id = 5;
         var = "#0";
         budget = None;
         deadline_ms = None;
         trace = Some 77;
       });
  ignore (P.Service.pump ~force:true svc ~now:0.0);
  P.Service.drain svc ~now:0.0;
  (* The tier answered before any batch existed: the wire breakdown and
     the flight-recorder row must both read zero queue/batch wait — a
     stale stamp here would claim the answer waited in a queue it never
     entered. *)
  (match !got with
  | Some (Proto.Answer { breakdown; cached; _ }) ->
      Alcotest.(check bool) "tier answers are not cache hits" false cached;
      Alcotest.(check (float 0.0)) "wire: no queue wait" 0.0
        breakdown.P.Svc_span.bd_queue_wait_us;
      Alcotest.(check (float 0.0)) "wire: no batch wait" 0.0
        breakdown.P.Svc_span.bd_batch_wait_us
  | r ->
      Alcotest.failf "oracle query: unexpected %s"
        (match r with
        | Some r -> Proto.response_to_string r
        | None -> "no response"));
  Alcotest.(check int) "answered by the tier" 1
    (P.Svc_metrics.get (P.Service.metrics svc) P.Svc_metrics.Oracle_hit);
  (match P.Svc_slowlog.worst (P.Service.slowlog svc) with
  | [ e ] ->
      Alcotest.(check int) "slowlog: no solver steps" 0 e.P.Svc_slowlog.sl_steps;
      Alcotest.(check (float 0.0)) "slowlog: no queue wait" 0.0
        e.P.Svc_slowlog.sl_breakdown.P.Svc_span.bd_queue_wait_us;
      Alcotest.(check (float 0.0)) "slowlog: no batch wait" 0.0
        e.P.Svc_slowlog.sl_breakdown.P.Svc_span.bd_batch_wait_us;
      Alcotest.(check (option int)) "slowlog: client trace id joined"
        (Some 77) e.P.Svc_slowlog.sl_trace
  | l -> Alcotest.failf "expected one slowlog entry, got %d" (List.length l));
  P.Service.shutdown svc

(* Slowlog trace joining on the ordinary batch path and on cache hits. *)
let test_slowlog_trace_ids () =
  let _, svc = make_service () in
  let ask id trace =
    let got = ref None in
    P.Service.submit svc ~now:0.0
      ~respond:(fun r -> got := Some r)
      (Proto.Query { id; var = "#0"; budget = None; deadline_ms = None; trace });
    ignore (P.Service.pump ~force:true svc ~now:0.0);
    P.Service.drain svc ~now:0.0;
    match !got with
    | Some (Proto.Answer { cached; _ }) -> cached
    | _ -> Alcotest.fail "query got no answer"
  in
  Alcotest.(check bool) "first ask solves" false (ask 1 (Some 42));
  Alcotest.(check bool) "second ask hits the cache" true (ask 2 (Some 43));
  let entries = P.Svc_slowlog.worst (P.Service.slowlog svc) in
  let trace_of id =
    match List.find_opt (fun e -> e.P.Svc_slowlog.sl_id = id) entries with
    | Some e -> e.P.Svc_slowlog.sl_trace
    | None -> Alcotest.failf "slowlog lost request %d" id
  in
  Alcotest.(check (option int)) "solved entry keeps trace=" (Some 42)
    (trace_of 1);
  Alcotest.(check (option int)) "cache-hit entry keeps trace=" (Some 43)
    (trace_of 2);
  (* The trace id rides into the slowlog JSON payload. *)
  (match P.Svc_slowlog.to_json (P.Service.slowlog svc) with
  | Json.List l ->
      Alcotest.(check bool) "slowlog JSON carries trace fields" true
        (List.exists
           (fun e ->
             match e with
             | Json.Obj fields ->
                 List.assoc_opt "trace" fields = Some (Json.Int 42)
             | _ -> false)
           l)
  | _ -> Alcotest.fail "slowlog JSON is not a list");
  P.Service.shutdown svc

let suite =
  ( "explain",
    [
      Alcotest.test_case "edge ids round-trip (tiny)" `Quick
        test_edge_ids_tiny;
      QCheck_alcotest.to_alcotest prop_edge_ids_random;
      Alcotest.test_case "witness replay on all profiles" `Slow
        test_replay_all_profiles;
      QCheck_alcotest.to_alcotest prop_replay_random;
      Alcotest.test_case "explain_deps covers the chain" `Quick
        test_deps_cover_witness;
      Alcotest.test_case "index: record/deps/clear" `Quick test_index_basics;
      Alcotest.test_case "index: byte budget sheds LRU" `Quick
        test_index_shedding;
      Alcotest.test_case "index: reverse map and generation" `Quick
        test_index_reverse_and_generation;
      Alcotest.test_case "service explain verb" `Quick test_service_explain;
      Alcotest.test_case "wire chain matches the library" `Quick
        test_wire_matches_library;
      Alcotest.test_case "oracle tier: zero batch stamps" `Quick
        test_oracle_tier_zero_stamps;
      Alcotest.test_case "slowlog keeps client trace ids" `Quick
        test_slowlog_trace_ids;
    ] )
