(* Int_table: the open-addressed int-keyed table backing the solver's memo
   tables and visited sets. Exercises growth, probe chains under load,
   generation-based O(1) clear, and the Set variant. *)
module Int_table = Parcfl.Int_table

let test_basic () =
  let t = Int_table.create () in
  Alcotest.(check int) "empty" 0 (Int_table.length t);
  Alcotest.(check bool) "mem absent" false (Int_table.mem t 7);
  Alcotest.(check (option int)) "find absent" None (Int_table.find t 7);
  Alcotest.(check int) "get default" (-1) (Int_table.get t 7 ~default:(-1));
  Int_table.set t 7 70;
  Int_table.set t 0 100;
  Alcotest.(check int) "length" 2 (Int_table.length t);
  Alcotest.(check (option int)) "find" (Some 70) (Int_table.find t 7);
  Alcotest.(check int) "get" 100 (Int_table.get t 0 ~default:(-1));
  Int_table.set t 7 71;
  Alcotest.(check int) "overwrite keeps length" 2 (Int_table.length t);
  Alcotest.(check (option int)) "overwritten" (Some 71) (Int_table.find t 7)

let test_grow () =
  (* Push far past any initial capacity; every binding must survive the
     rehashes and every probe chain must stay intact. *)
  let t = Int_table.create ~capacity:1 () in
  let n = 10_000 in
  for k = 0 to n - 1 do
    Int_table.set t (k * 3) (k + 1)
  done;
  Alcotest.(check int) "length after growth" n (Int_table.length t);
  let ok = ref true in
  for k = 0 to n - 1 do
    if Int_table.get t (k * 3) ~default:0 <> k + 1 then ok := false;
    (* Neighbours of stored keys are absent: probing must terminate. *)
    if Int_table.mem t ((k * 3) + 1) then ok := false
  done;
  Alcotest.(check bool) "all bindings survive growth" true !ok

let test_find_or_add () =
  let t = Int_table.create () in
  let calls = ref 0 in
  let mk k =
    incr calls;
    k * 10
  in
  Alcotest.(check int) "inserts" 420 (Int_table.find_or_add t 42 mk);
  Alcotest.(check int) "returns existing" 420 (Int_table.find_or_add t 42 mk);
  Alcotest.(check int) "f called once" 1 !calls;
  Int_table.set t 5 99;
  Alcotest.(check int) "respects set" 99 (Int_table.find_or_add t 5 mk);
  Alcotest.(check int) "f not called for present key" 1 !calls

let test_iter () =
  let t = Int_table.create () in
  for k = 0 to 99 do
    Int_table.set t k (k * 2)
  done;
  let seen = Array.make 100 false in
  Int_table.iter
    (fun k v ->
      if v <> k * 2 then Alcotest.fail "iter: wrong value";
      if seen.(k) then Alcotest.fail "iter: duplicate key";
      seen.(k) <- true)
    t;
  Alcotest.(check bool) "iter visits every binding" true
    (Array.for_all Fun.id seen)

let test_generation_clear () =
  let t = Int_table.create ~capacity:4 () in
  (* Many clear/refill rounds: stale slots from earlier generations must
     always read as empty, including after the generation counter has been
     bumped many times over the same backing array. *)
  for round = 0 to 99 do
    for k = 0 to 31 do
      Int_table.set t k ((round * 100) + k)
    done;
    Alcotest.(check int) "length within round" 32 (Int_table.length t);
    Int_table.clear t;
    Alcotest.(check int) "cleared" 0 (Int_table.length t);
    for k = 0 to 31 do
      if Int_table.mem t k then Alcotest.fail "stale slot visible after clear"
    done
  done;
  (* A binding written after many clears reflects only the latest write. *)
  Int_table.set t 3 7;
  Alcotest.(check (option int)) "fresh binding after clears" (Some 7)
    (Int_table.find t 3)

let prop_model =
  QCheck.Test.make ~name:"int_table agrees with Hashtbl model" ~count:200
    QCheck.(list (pair (int_bound 63) small_nat))
    (fun ops ->
      let t = Int_table.create ~capacity:2 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          Int_table.set t k v;
          Hashtbl.replace model k v)
        ops;
      Hashtbl.length model = Int_table.length t
      && Hashtbl.fold
           (fun k v acc -> acc && Int_table.find t k = Some v)
           model true
      && List.for_all
           (fun k ->
             Hashtbl.mem model k || Int_table.find t k = None)
           (List.init 64 Fun.id))

let test_set () =
  let s = Int_table.Set.create ~capacity:2 () in
  Alcotest.(check bool) "fresh add" true (Int_table.Set.add s 11);
  Alcotest.(check bool) "dup add" false (Int_table.Set.add s 11);
  Alcotest.(check bool) "mem" true (Int_table.Set.mem s 11);
  Alcotest.(check bool) "not mem" false (Int_table.Set.mem s 12);
  for k = 0 to 999 do
    ignore (Int_table.Set.add s k)
  done;
  Alcotest.(check int) "length after growth" 1000 (Int_table.Set.length s);
  Int_table.Set.clear s;
  Alcotest.(check int) "cleared" 0 (Int_table.Set.length s);
  Alcotest.(check bool) "stale member gone" false (Int_table.Set.mem s 11);
  Alcotest.(check bool) "re-add after clear" true (Int_table.Set.add s 11)

let suite =
  ( "int-table",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "growth" `Quick test_grow;
      Alcotest.test_case "find_or_add" `Quick test_find_or_add;
      Alcotest.test_case "iter" `Quick test_iter;
      Alcotest.test_case "generation clear" `Quick test_generation_clear;
      QCheck_alcotest.to_alcotest prop_model;
      Alcotest.test_case "set variant" `Quick test_set;
    ] )
