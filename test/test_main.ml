(* Aggregated test runner; suites live in per-module files. *)
let () =
  Alcotest.run "parcfl"
    [
      Test_bitset.suite;
      Test_vec.suite;
      Test_scc.suite;
      Test_prim_misc.suite;
      Test_int_table.suite;
      Test_conc.suite;
      Test_ctx.suite;
      Test_pag.suite;
      Test_cycle_elim.suite;
      Test_serial.suite;
      Test_types.suite;
      Test_lang.suite;
      Test_parser.suite;
      Test_paper_example.suite;
      Test_solver.suite;
      Test_solver_extra.suite;
      Test_witness.suite;
      Test_oracle.suite;
      Test_sharing.suite;
      Test_refine.suite;
      Test_summary.suite;
      Test_sched.suite;
      Test_fig5.suite;
      Test_andersen.suite;
      Test_par.suite;
      Test_sim_store.suite;
      Test_ablation_knobs.suite;
      Test_workload.suite;
      Test_clients.suite;
      Test_stats_render.suite;
      Test_obs.suite;
      Test_svc.suite;
      Test_telemetry.suite;
    ]
