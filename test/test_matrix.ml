(* The whole-program bitset matrix backend (lib/matrix) and its jmp-store
   pre-seeding, checked differentially against the other two backends:

   - kernel = Andersen on handwritten, generated and random PAGs (two
     independent whole-program implementations of the same fixpoint);
   - kernel = the demand solver at budgetless context-insensitive
     settings, on every Suite workload's query population;
   - pre-seeded demand sessions answer exactly like cold ones, in both
     the context-insensitive engine (full target sets are replayed) and
     the context-sensitive engine (only empty CI sets are seeded). *)

module P = Parcfl

let pag_of_profile p =
  let program = P.Genprog.generate p in
  let cg = P.Callgraph.build program in
  (P.Lower.lower program cg).P.Lower.pag

let kernel_vs_andersen ?(threads = 1) pag =
  let k = P.Matrix.solve ~threads pag in
  let a = P.Andersen.solve pag in
  let bad = ref [] in
  for v = 0 to P.Pag.n_vars pag - 1 do
    if P.Matrix.points_to_list k v <> P.Andersen.points_to_list a v then
      bad := v :: !bad
  done;
  !bad

let test_kernel_tiny () =
  let pag = pag_of_profile P.Profile.tiny in
  Alcotest.(check (list int)) "threads=1" [] (kernel_vs_andersen pag);
  Alcotest.(check (list int)) "threads=3" [] (kernel_vs_andersen ~threads:3 pag)

let test_kernel_threads_agree () =
  (* Determinism across thread counts: identical rows, not just parity. *)
  let pag = pag_of_profile (Option.get (P.Profile.find "_200_check")) in
  let k1 = P.Matrix.solve ~threads:1 pag in
  let k4 = P.Matrix.solve ~threads:4 pag in
  for v = 0 to P.Pag.n_vars pag - 1 do
    if P.Matrix.points_to_list k1 v <> P.Matrix.points_to_list k4 v then
      Alcotest.failf "rows differ at #%d" v
  done

let test_kernel_all_profiles () =
  List.iter
    (fun p ->
      let pag = pag_of_profile p in
      match kernel_vs_andersen ~threads:2 pag with
      | [] -> ()
      | bad ->
          Alcotest.failf "%s: %d vars disagree with Andersen (e.g. #%d)"
            p.P.Profile.name (List.length bad) (List.hd bad))
    P.Profile.all

let prop_kernel_random =
  QCheck.Test.make ~name:"kernel = Andersen on random PAGs" ~count:150
    (QCheck.make Test_oracle.random_pag_gen) (fun edges ->
      let pag = Test_oracle.build_random edges in
      kernel_vs_andersen pag = [])

(* ---------------- demand-solver parity (budgetless CI) -------------- *)

let ci_budgetless =
  {
    P.Config.budget = max_int;
    context_sensitive = false;
    max_ctx_depth = 64;
    exhaustive = false;
  }

let session ?hooks config pag =
  P.Solver.make_session ?hooks ~config ~ctx_store:(P.Ctx.create_store ()) pag

let objects outcome = P.Query.objects outcome.P.Query.result |> List.sort compare

let test_kernel_vs_demand_suites () =
  (* The tentpole differential: on every Table-I workload, the kernel and
     a budgetless context-insensitive demand session agree on the paper's
     whole query population. *)
  List.iter
    (fun p ->
      let b = P.Suite.build p in
      let k = P.Matrix.solve ~threads:2 b.P.Suite.pag in
      let s = session ci_budgetless b.P.Suite.pag in
      let vars = List.sort_uniq compare (Array.to_list b.P.Suite.queries) in
      List.iter
        (fun v ->
          let demand = objects (P.Solver.points_to s v) in
          let matrix = P.Matrix.points_to_list k v in
          if demand <> matrix then
            Alcotest.failf "%s #%d: demand %d objs, matrix %d objs"
              p.P.Profile.name v (List.length demand) (List.length matrix))
        vars)
    P.Profile.all

let test_kernel_vs_oracle_tiny () =
  let pag = pag_of_profile P.Profile.tiny in
  let k = P.Matrix.solve pag in
  let s = session P.Config.oracle pag in
  for v = 0 to P.Pag.n_vars pag - 1 do
    if objects (P.Solver.points_to s v) <> P.Matrix.points_to_list k v then
      Alcotest.failf "oracle disagrees at #%d" v
  done

(* ------------------------- pre-seeding ------------------------------ *)

let seeded_store ~context_sensitive pag =
  let kernel = P.Matrix.solve ~threads:2 pag in
  let store =
    P.Jmp_store.create ~tau_f:P.Profile.default_tau_f
      ~tau_u:P.Profile.default_tau_u ()
  in
  let n = P.Matrix_seed.preseed ~kernel ~pag ~store ~context_sensitive in
  (store, n)

let check_warm_equals_cold ~name ~config ~context_sensitive suite =
  let pag = suite.P.Suite.pag in
  let store, seeded = seeded_store ~context_sensitive pag in
  Alcotest.(check bool) (name ^ ": seeded some records") true (seeded > 0);
  let cold = session config pag in
  let warm = session ~hooks:(P.Jmp_store.hooks store) config pag in
  let vars = List.sort_uniq compare (Array.to_list suite.P.Suite.queries) in
  List.iter
    (fun v ->
      let c = P.Solver.points_to cold v and w = P.Solver.points_to warm v in
      match (c.P.Query.result, w.P.Query.result) with
      | P.Query.Out_of_budget, P.Query.Out_of_budget -> ()
      | _ ->
          if objects c <> objects w then
            Alcotest.failf "%s #%d: cold %d objs, warm %d objs" name v
              (List.length (objects c))
              (List.length (objects w)))
    vars;
  P.Jmp_store.n_hits store

let test_preseed_ci_equivalence () =
  List.iter
    (fun name ->
      let suite = Option.get (P.Suite.build_by_name name) in
      let hits =
        check_warm_equals_cold ~name:("ci " ^ name) ~config:ci_budgetless
          ~context_sensitive:false suite
      in
      (* The seeds must actually serve traffic, or the warm path proved
         nothing. *)
      Alcotest.(check bool) (name ^ ": seeds were hit") true (hits > 0))
    [ "tiny"; "_200_check" ]

let test_preseed_cs_equivalence () =
  (* The context-sensitive engine only accepts empty CI heap-step sets;
     answers must be bit-identical to a cold run at the same config. *)
  let config =
    P.Config.with_budget max_int P.Config.default
  in
  List.iter
    (fun name ->
      let suite = Option.get (P.Suite.build_by_name name) in
      ignore
        (check_warm_equals_cold ~name:("cs " ^ name) ~config
           ~context_sensitive:true suite))
    [ "tiny"; "_200_check" ]

(* End to end through the service: a pre-seeded service and a cold one
   answer the same query stream identically (modulo step accounting). *)
let test_preseed_service_equivalence () =
  let b = Option.get (P.Suite.build_by_name "tiny") in
  let answers ~context_sensitive ~preseed =
    let config =
      {
        P.Service.default_config with
        P.Service.threads = 1;
        max_batch = 8;
        max_wait = 0.0;
        context_sensitive;
        preseed;
      }
    in
    let svc =
      P.Service.create ~config ~type_level:b.P.Suite.type_level b.P.Suite.pag
    in
    if preseed then
      Alcotest.(check bool) "service reports seeds" true
        (P.Svc_engine.preseeded_edges (P.Service.engine svc) > 0);
    let results = Hashtbl.create 64 in
    Array.iteri
      (fun i v ->
        P.Service.submit svc ~now:0.0
          ~respond:(fun r ->
            let key =
              match r with
              | P.Svc_protocol.Answer { objects; _ } -> `Objs objects
              | P.Svc_protocol.Timeout { reason; _ } -> `Timeout reason
              | r -> `Other (P.Svc_protocol.response_to_string r)
            in
            Hashtbl.replace results i key)
          (P.Svc_protocol.Query
             {
               id = i;
               var = Printf.sprintf "#%d" v;
               budget = None;
               deadline_ms = None;
               trace = None;
             });
        ignore (P.Service.pump ~force:true svc ~now:0.0))
      b.P.Suite.queries;
    results
  in
  List.iter
    (fun context_sensitive ->
      let cold = answers ~context_sensitive ~preseed:false in
      let warm = answers ~context_sensitive ~preseed:true in
      Alcotest.(check int)
        "both sides answered everything" (Hashtbl.length cold)
        (Hashtbl.length warm);
      Hashtbl.iter
        (fun i c ->
          match Hashtbl.find_opt warm i with
          | Some w when w = c -> ()
          | _ ->
              Alcotest.failf "query %d: cold and warm answers differ (cs=%b)"
                i context_sensitive)
        cold)
    [ true; false ]

let suite =
  ( "matrix",
    [
      Alcotest.test_case "kernel = Andersen (tiny)" `Quick test_kernel_tiny;
      Alcotest.test_case "kernel thread counts agree" `Slow
        test_kernel_threads_agree;
      Alcotest.test_case "kernel = Andersen (all profiles)" `Slow
        test_kernel_all_profiles;
      QCheck_alcotest.to_alcotest prop_kernel_random;
      Alcotest.test_case "kernel = demand (all suites, budgetless CI)" `Slow
        test_kernel_vs_demand_suites;
      Alcotest.test_case "kernel = demand oracle (tiny)" `Quick
        test_kernel_vs_oracle_tiny;
      Alcotest.test_case "preseed CI: warm = cold" `Slow
        test_preseed_ci_equivalence;
      Alcotest.test_case "preseed CS: warm = cold" `Slow
        test_preseed_cs_equivalence;
      Alcotest.test_case "preseeded service = cold service" `Quick
        test_preseed_service_equivalence;
    ] )
