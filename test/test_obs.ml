(* Observability layer: the hand-rolled JSON printer/parser, the per-worker
   event tracer with its Chrome trace export, and the report-level
   histogram/ratio invariants the bench emitter relies on. *)
module Json = Parcfl.Json
module Tracer = Parcfl.Tracer
module Mode = Parcfl.Mode
module Runner = Parcfl.Runner
module Report = Parcfl.Report
module Histogram = Parcfl.Histogram

(* ------------------------------- json ------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("true", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 3.25);
        ("big", Json.Float 1.5e300);
        ("str", Json.String "a\"b\\c\nd\te\x01f");
        ("unicode", Json.String "caf\xc3\xa9");
        ("list", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip" true (v = v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_float_token () =
  (* Floats must re-parse as Float, ints as Int. *)
  (match Json.of_string (Json.to_string (Json.Float 4.0)) with
  | Ok (Json.Float 4.0) -> ()
  | Ok v -> Alcotest.failf "4.0 became %s" (Json.to_string v)
  | Error e -> Alcotest.fail e);
  (match Json.of_string (Json.to_string (Json.Int 4)) with
  | Ok (Json.Int 4) -> ()
  | _ -> Alcotest.fail "int 4 does not round-trip");
  (* Non-finite floats print as null — still valid JSON. *)
  match Json.of_string (Json.to_string (Json.Float Float.nan)) with
  | Ok Json.Null -> ()
  | _ -> Alcotest.fail "nan must serialise as null"

let test_json_parser_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "%S parsed as %s" s (Json.to_string v))
    [
      ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "nul"; "1 2";
      "{\"a\":1,}"; "[1] trailing";
    ]

let test_json_unicode_escape () =
  match Json.of_string "\"\\u0041\\u00e9\\n\"" with
  | Ok (Json.String s) ->
      Alcotest.(check string) "escapes decode" "A\xc3\xa9\n" s
  | Ok v -> Alcotest.failf "unexpected %s" (Json.to_string v)
  | Error e -> Alcotest.fail e

(* ------------------------------ tracer ----------------------------- *)

let trace_events json =
  match Json.member "traceEvents" json with
  | Some (Json.List evs) -> evs
  | _ -> Alcotest.fail "missing traceEvents"

let str_field k ev =
  match Json.member k ev with
  | Some (Json.String s) -> s
  | _ -> Alcotest.failf "event missing %S" k

let int_field k ev =
  match Json.member k ev with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "event missing int %S" k

let ts_field ev =
  match Json.member "ts" ev with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.fail "event missing ts"

(* The structural contract of the export: per thread, timestamps are
   monotonic, B/E strictly alternate (queries never nest per worker) and
   every B has its E. *)
let check_well_formed evs =
  let per_tid = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let tid = int_field "tid" ev in
      let prev =
        match Hashtbl.find_opt per_tid tid with
        | Some p -> p
        | None -> (neg_infinity, 0)
      in
      let last_ts, depth = prev in
      let ts = ts_field ev in
      if ts < last_ts then
        Alcotest.failf "tid %d: ts %f < %f" tid ts last_ts;
      let depth =
        match str_field "ph" ev with
        | "B" ->
            if depth <> 0 then Alcotest.failf "tid %d: nested B" tid;
            1
        | "E" ->
            if depth <> 1 then Alcotest.failf "tid %d: E without B" tid;
            0
        | "i" -> depth
        | ph -> Alcotest.failf "unexpected phase %S" ph
      in
      Hashtbl.replace per_tid tid (ts, depth))
    evs;
  Hashtbl.iter
    (fun tid (_, depth) ->
      if depth <> 0 then Alcotest.failf "tid %d: unclosed B" tid)
    per_tid

let test_tracer_roundtrip () =
  let tr = Tracer.create ~workers:2 () in
  for w = 0 to 1 do
    for q = 0 to 4 do
      Tracer.emit tr ~worker:w Tracer.Query_start ~var:q;
      Tracer.emit tr ~worker:w Tracer.Jmp_hit ~var:(100 + q);
      if q mod 2 = 0 then Tracer.emit tr ~worker:w Tracer.Early_term ~var:q;
      Tracer.emit tr ~worker:w Tracer.Query_end ~var:q
    done
  done;
  Alcotest.(check int) "all retained" (5 * 2 * 2 + 5 * 2 + 3 * 2)
    (Tracer.n_events tr);
  Alcotest.(check int) "nothing dropped" 0 (Tracer.n_dropped tr);
  let s = Json.to_string (Tracer.to_json tr) in
  match Json.of_string s with
  | Error e -> Alcotest.failf "export does not parse: %s" e
  | Ok json ->
      let evs = trace_events json in
      check_well_formed evs;
      let tids =
        List.sort_uniq compare (List.map (int_field "tid") evs)
      in
      Alcotest.(check (list int)) "both workers present" [ 0; 1 ] tids;
      let starts =
        List.filter (fun ev -> str_field "ph" ev = "B") evs
      in
      Alcotest.(check int) "10 queries" 10 (List.length starts)

let test_tracer_overflow () =
  let tr = Tracer.create ~capacity:16 ~workers:1 () in
  for q = 0 to 99 do
    Tracer.emit tr ~worker:0 Tracer.Query_start ~var:q;
    Tracer.emit tr ~worker:0 Tracer.Budget_exhausted ~var:q;
    Tracer.emit tr ~worker:0 Tracer.Query_end ~var:q
  done;
  Alcotest.(check int) "ring is full" 16 (Tracer.n_events tr);
  Alcotest.(check int) "rest dropped" (300 - 16) (Tracer.n_dropped tr);
  (* After wrap the export must still be well formed: no orphan E. *)
  match Json.of_string (Json.to_string (Tracer.to_json tr)) with
  | Error e -> Alcotest.failf "overflow export does not parse: %s" e
  | Ok json -> check_well_formed (trace_events json)

let test_tracer_ignores_bad_worker () =
  let tr = Tracer.create ~workers:1 () in
  Tracer.emit tr ~worker:5 Tracer.Query_start ~var:0;
  Tracer.emit tr ~worker:(-1) Tracer.Query_start ~var:0;
  Alcotest.(check int) "out-of-range workers ignored" 0 (Tracer.n_events tr)

(* The service lane: request spans export as "X" complete events on their
   own pseudo-process, overlapping requests on distinct lanes (tids). *)
let test_tracer_service_lane () =
  let tr = Tracer.create ~workers:1 () in
  let span id a b =
    {
      Tracer.rq_id = id;
      rq_var = id;
      rq_admit_us = a;
      rq_batch_us = a +. 10.0;
      rq_sched_us = a +. 12.0;
      rq_solve_start_us = a +. 15.0;
      rq_solve_end_us = b -. 5.0;
      rq_respond_us = b;
    }
  in
  (* Two overlapping requests, one disjoint later one. *)
  Tracer.note_request tr (span 1 0.0 100.0);
  Tracer.note_request tr (span 2 50.0 150.0);
  Tracer.note_request tr (span 3 200.0 300.0);
  Alcotest.(check int) "three spans" 3 (Tracer.n_requests tr);
  Alcotest.(check int) "none dropped" 0 (Tracer.n_dropped_requests tr);
  match Json.of_string (Json.to_string (Tracer.to_json tr)) with
  | Error e -> Alcotest.failf "service lane export does not parse: %s" e
  | Ok json ->
      let evs = trace_events json in
      let service_evs =
        List.filter
          (fun ev ->
            match Json.member "pid" ev with
            | Some (Json.Int 1) -> true
            | _ -> false)
          evs
      in
      let requests =
        List.filter
          (fun ev ->
            str_field "ph" ev = "X" && str_field "name" ev = "request")
          service_evs
      in
      Alcotest.(check int) "one X event per request" 3 (List.length requests);
      (* Overlapping requests 1 and 2 must not share a lane; request 3 can
         reuse a freed one. *)
      let lane_of id =
        match
          List.find_opt
            (fun ev ->
              match Json.member "args" ev with
              | Some args -> (
                  match Json.member "id" args with
                  | Some (Json.Int i) -> i = id
                  | _ -> false)
              | None -> false)
            requests
        with
        | Some ev -> int_field "tid" ev
        | None -> Alcotest.failf "request %d missing from the lane" id
      in
      Alcotest.(check bool) "overlap forces distinct lanes" true
        (lane_of 1 <> lane_of 2);
      Alcotest.(check int) "disjoint request reuses lane 0" (lane_of 1)
        (lane_of 3);
      (* Every X event carries a non-negative duration, and the stage
         slices nest inside their request. *)
      List.iter
        (fun ev ->
          match Json.member "dur" ev with
          | Some (Json.Float d) ->
              Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
          | Some (Json.Int d) ->
              Alcotest.(check bool) "dur >= 0" true (d >= 0)
          | _ -> Alcotest.fail "X event without dur")
        (List.filter (fun ev -> str_field "ph" ev = "X") service_evs);
      let stage_names =
        List.filter_map
          (fun ev ->
            let n = str_field "name" ev in
            if str_field "ph" ev = "X" && n <> "request" then Some n else None)
          service_evs
        |> List.sort_uniq compare
      in
      Alcotest.(check bool) "stage slices present" true
        (List.mem "solve" stage_names && List.mem "queue" stage_names)

(* --------------------------- histograms ---------------------------- *)

let test_histogram_bucket () =
  Alcotest.(check int) "0 -> bucket 0" 0 (Histogram.bucket ~buckets:8 0);
  Alcotest.(check int) "1 -> bucket 0" 0 (Histogram.bucket ~buckets:8 1);
  Alcotest.(check int) "2 -> bucket 1" 1 (Histogram.bucket ~buckets:8 2);
  Alcotest.(check int) "255 -> bucket 7" 7 (Histogram.bucket ~buckets:8 255);
  Alcotest.(check int) "overflow clamps" 7
    (Histogram.bucket ~buckets:8 max_int);
  let h = Histogram.of_values ~buckets:8 [| 0; 1; 2; 3; 9; 1_000_000 |] in
  Alcotest.(check int) "totals preserved" 6 (Array.fold_left ( + ) 0 h)

(* ------------------------ report invariants ------------------------ *)

let bench = lazy (Parcfl.Suite.build Parcfl.Profile.tiny)

let test_report_invariants () =
  let b = Lazy.force bench in
  let n_queries = Array.length b.Parcfl.Suite.queries in
  List.iter
    (fun (mode, sim) ->
      let r =
        if sim then
          Runner.simulate ~tau_f:5 ~tau_u:50
            ~type_level:b.Parcfl.Suite.type_level ~mode ~threads:4
            ~queries:b.Parcfl.Suite.queries b.Parcfl.Suite.pag
        else
          Runner.run ~tau_f:5 ~tau_u:50
            ~type_level:b.Parcfl.Suite.type_level ~mode ~threads:2
            ~queries:b.Parcfl.Suite.queries b.Parcfl.Suite.pag
      in
      let total a = Array.fold_left ( + ) 0 a in
      Alcotest.(check int) "latency hist sums to query count" n_queries
        (total r.Report.r_latency_hist);
      Alcotest.(check int) "steps hist sums to query count" n_queries
        (total r.Report.r_steps_hist);
      let rs = Report.ratio_saved r in
      Alcotest.(check bool) "ratio_saved in [0,1]" true
        (rs >= 0.0 && rs <= 1.0);
      if Mode.uses_sharing mode then
        Alcotest.(check bool) "sharing saves something" true (rs > 0.0)
      else Alcotest.(check (float 0.0)) "no sharing, no savings" 0.0 rs;
      (* The bench entry is valid JSON carrying the same numbers. *)
      match Json.of_string (Json.to_string (Report.to_json ~bench:"t" r)) with
      | Error e -> Alcotest.failf "report json: %s" e
      | Ok j ->
          Alcotest.(check (option string)) "mode field"
            (Some (Mode.to_string mode))
            (match Json.member "mode" j with
            | Some (Json.String s) -> Some s
            | _ -> None);
          (match Json.member "ratio_saved" j with
          | Some (Json.Float f) ->
              Alcotest.(check (float 1e-9)) "ratio field" rs f
          | _ -> Alcotest.fail "ratio_saved missing");
          (match Json.member "queries" j with
          | Some (Json.Int q) ->
              Alcotest.(check int) "queries field" n_queries q
          | _ -> Alcotest.fail "queries missing"))
    [ (Mode.Seq, false); (Mode.Share, false); (Mode.Share_sched, true) ]

let test_solver_trace_wiring () =
  (* The runner threads the tracer into the solver: a traced run records
     exactly one B/E pair per query on the workers that executed them. *)
  let b = Lazy.force bench in
  let tracer = Tracer.create ~workers:2 () in
  let _r =
    Runner.run ~tau_f:5 ~tau_u:50 ~type_level:b.Parcfl.Suite.type_level
      ~tracer ~mode:Mode.Share ~threads:2 ~queries:b.Parcfl.Suite.queries
      b.Parcfl.Suite.pag
  in
  match Json.of_string (Json.to_string (Tracer.to_json tracer)) with
  | Error e -> Alcotest.failf "trace json: %s" e
  | Ok json ->
      let evs = trace_events json in
      check_well_formed evs;
      let starts = List.filter (fun ev -> str_field "ph" ev = "B") evs in
      Alcotest.(check int) "one span per query"
        (Array.length b.Parcfl.Suite.queries)
        (List.length starts)

let test_bench_stamp () =
  let module B = Parcfl.Bench_json in
  List.iter
    (fun (name, want) ->
      Alcotest.(check bool) name want (B.is_timestamped name))
    [
      ("20260809T020844Z.json", true);
      ("19991231T235959Z.json", true);
      ("latest.json", false);
      ("20260809T020844Z.json.bak", false);
      ("20260809t020844Z.json", false);
      ("2026080xT020844Z.json", false);
      ("20260809T020844Z.JSON", false);
      ("", false);
    ]

let test_prune_history () =
  let module B = Parcfl.Bench_json in
  let dir = Filename.temp_file "parcfl_hist" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let touch name = close_out (open_out (Filename.concat dir name)) in
  let stamps =
    [
      "20260801T000000Z.json";
      "20260802T000000Z.json";
      "20260803T000000Z.json";
      "20260804T000000Z.json";
    ]
  in
  List.iter touch stamps;
  touch "latest.json";
  touch "notes.txt";
  let removed = B.prune_history ~dir ~keep:2 in
  Alcotest.(check (slist string compare))
    "two oldest removed"
    [ "20260801T000000Z.json"; "20260802T000000Z.json" ]
    removed;
  let left = Sys.readdir dir |> Array.to_list |> List.sort compare in
  Alcotest.(check (list string))
    "newest stamps and strays survive"
    [ "20260803T000000Z.json"; "20260804T000000Z.json"; "latest.json"; "notes.txt" ]
    left;
  Alcotest.(check (list string)) "idempotent" [] (B.prune_history ~dir ~keep:2);
  Alcotest.(check (list string))
    "missing directory prunes nothing" []
    (B.prune_history ~dir:(Filename.concat dir "absent") ~keep:1);
  List.iter (fun n -> Sys.remove (Filename.concat dir n)) left;
  Unix.rmdir dir

let suite =
  ( "obs",
    [
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json float token" `Quick test_json_float_token;
      Alcotest.test_case "json parser errors" `Quick test_json_parser_errors;
      Alcotest.test_case "json unicode escape" `Quick test_json_unicode_escape;
      Alcotest.test_case "tracer roundtrip" `Quick test_tracer_roundtrip;
      Alcotest.test_case "tracer overflow" `Quick test_tracer_overflow;
      Alcotest.test_case "tracer bad worker" `Quick
        test_tracer_ignores_bad_worker;
      Alcotest.test_case "tracer service lane" `Quick
        test_tracer_service_lane;
      Alcotest.test_case "histogram bucket" `Quick test_histogram_bucket;
      Alcotest.test_case "report invariants" `Quick test_report_invariants;
      Alcotest.test_case "solver trace wiring" `Quick
        test_solver_trace_wiring;
      Alcotest.test_case "bench history stamp" `Quick test_bench_stamp;
      Alcotest.test_case "bench history pruning" `Quick test_prune_history;
    ] )
