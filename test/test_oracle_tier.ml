(* The O(1) pair-query oracle (lib/oracle) and its service tier.

   Correctness is differential three ways: the oracle's rows must equal
   field-sensitive Andersen on every variable (the whole-program witness),
   must equal the budgetless context-insensitive demand solver on query
   sets (the engine the tier sits in front of), and an oracle-tiered
   service must return byte-identical (var, objects) payloads to an
   oracle-less one on the same traffic. The tier's bookkeeping is checked
   separately: refined requests fall through as misses, a dead generation
   falls back, imports arm the tier, and the stats/exposition surfaces
   agree. *)

module P = Parcfl
module Pag = P.Pag
module Query = P.Query

let pag_of_profile p =
  let program = P.Genprog.generate p in
  let cg = P.Callgraph.build program in
  (P.Lower.lower program cg).P.Lower.pag

let tiny = lazy (Option.get (P.Suite.build_by_name "tiny"))

(* Variables where the oracle and Andersen disagree (must be []). *)
let oracle_vs_andersen pag =
  let oracle = P.Oracle.build ~generation:0 pag in
  let andersen = P.Andersen.solve pag in
  let bad = ref [] in
  for v = 0 to Pag.n_vars pag - 1 do
    if P.Oracle.points_to_list oracle v <> P.Andersen.points_to_list andersen v
    then bad := v :: !bad
  done;
  !bad

let demand_pts session v =
  List.sort compare (Query.objects (P.Solver.points_to session v).Query.result)

(* Queried variables where the oracle and the budgetless CI demand solver
   disagree (must be []). *)
let oracle_vs_demand pag queries =
  let oracle = P.Oracle.build ~generation:0 pag in
  let session =
    P.Solver.make_session ~config:P.Config.oracle
      ~ctx_store:(P.Ctx.create_store ()) pag
  in
  List.filter
    (fun v -> P.Oracle.points_to_list oracle v <> demand_pts session v)
    queries

let test_all_profiles () =
  (* Whole-program agreement on the entire built-in suite: every variable
     of every benchmark profile. This is the test that holds the copy-SCC
     row sharing (one row per component) to the theorem it relies on. *)
  List.iter
    (fun p ->
      let pag = pag_of_profile p in
      Alcotest.(check (list int))
        (Printf.sprintf "oracle = Andersen on %s" p.P.Profile.name)
        [] (oracle_vs_andersen pag))
    P.Profile.all

let test_demand_agreement () =
  List.iter
    (fun name ->
      let b = Option.get (P.Suite.build_by_name name) in
      let queries =
        Array.to_list b.P.Suite.queries
        |> List.sort_uniq compare
        |> List.filteri (fun i _ -> i < 100)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "oracle = budgetless demand on %s" name)
        []
        (oracle_vs_demand b.P.Suite.pag queries))
    [ "tiny"; "_200_check" ]

(* Random PAGs: the same edge-soup generator as test_oracle.ml — the
   equivalence must hold for any PAG, not just Java-shaped ones. *)
let random_pag_gen =
  QCheck.Gen.(
    let small = int_bound 7 in
    list_size (int_bound 24)
      (oneof
         [
           map2 (fun a b -> `New (a, b)) small (int_bound 4);
           map2 (fun a b -> `Assign (a, b)) small small;
           map2 (fun a b -> `Gassign (a, b)) small small;
           map3 (fun a b f -> `Load (a, b, f)) small small (int_bound 2);
           map3 (fun a f b -> `Store (a, f, b)) small (int_bound 2) small;
           map3 (fun a i b -> `Param (a, i, b)) small (int_bound 3) small;
           map3 (fun a i b -> `Ret (a, i, b)) small (int_bound 3) small;
         ]))

let build_random edges =
  let module B = Pag.Build in
  let b = B.create () in
  let vars = Array.init 8 (fun i -> B.add_var b (Printf.sprintf "v%d" i)) in
  let objects = Array.init 5 (fun i -> B.add_obj b (Printf.sprintf "o%d" i)) in
  List.iter
    (fun e ->
      match e with
      | `New (x, o) -> B.new_edge b ~dst:vars.(x) objects.(o)
      | `Assign (x, y) -> B.assign b ~dst:vars.(x) ~src:vars.(y)
      | `Gassign (x, y) -> B.assign_global b ~dst:vars.(x) ~src:vars.(y)
      | `Load (x, p, f) -> B.load b ~dst:vars.(x) ~base:vars.(p) f
      | `Store (q, f, y) -> B.store b ~base:vars.(q) f ~src:vars.(y)
      | `Param (x, i, y) -> B.param b ~dst:vars.(x) ~site:i ~src:vars.(y)
      | `Ret (x, i, y) -> B.ret b ~dst:vars.(x) ~site:i ~src:vars.(y))
    edges;
  B.freeze b

let prop_three_way_random =
  QCheck.Test.make
    ~name:"oracle = Andersen = budgetless demand on random PAGs" ~count:100
    (QCheck.make random_pag_gen)
    (fun edges ->
      let pag = build_random edges in
      let all_vars = List.init (Pag.n_vars pag) Fun.id in
      oracle_vs_andersen pag = [] && oracle_vs_demand pag all_vars = [])

let prop_may_alias_random =
  QCheck.Test.make ~name:"may_alias agrees with row intersection" ~count:60
    (QCheck.make random_pag_gen)
    (fun edges ->
      let pag = build_random edges in
      let oracle = P.Oracle.build ~generation:0 pag in
      let n = Pag.n_vars pag in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let inter =
            List.exists
              (fun o -> List.mem o (P.Oracle.points_to_list oracle b))
              (P.Oracle.points_to_list oracle a)
          in
          if P.Oracle.may_alias oracle a b <> inter then ok := false
        done
      done;
      !ok)

let test_shape () =
  let b = Lazy.force tiny in
  let pag = b.P.Suite.pag in
  let oracle = P.Oracle.build ~generation:7 pag in
  Alcotest.(check int) "generation" 7 (P.Oracle.generation oracle);
  Alcotest.(check int) "n_vars" (Pag.n_vars pag) (P.Oracle.n_vars oracle);
  Alcotest.(check bool) "rows deduplicated" true
    (P.Oracle.distinct_rows oracle <= Pag.n_vars pag);
  Alcotest.(check bool) "compressed accounting positive" true
    (P.Oracle.compressed_bytes oracle > 0);
  (* The borrowed bitset and the materialised list are the same set. *)
  for v = 0 to Pag.n_vars pag - 1 do
    Alcotest.(check (list int))
      "points_to row = points_to_list" (P.Oracle.points_to_list oracle v)
      (P.Bitset.elements (P.Oracle.points_to oracle v))
  done;
  (match P.Oracle.points_to oracle (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative variable accepted");
  match P.Oracle.points_to oracle (Pag.n_vars pag) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range variable accepted"

let test_export_import () =
  let pag = (Lazy.force tiny).P.Suite.pag in
  let oracle = P.Oracle.build ~generation:3 pag in
  let text = P.Oracle.export oracle in
  (match P.Oracle.import ~generation:3 text with
  | Error e -> Alcotest.failf "round trip refused: %s" e
  | Ok back ->
      for v = 0 to Pag.n_vars pag - 1 do
        Alcotest.(check (list int))
          "imported rows agree"
          (P.Oracle.points_to_list oracle v)
          (P.Oracle.points_to_list back v)
      done;
      Alcotest.(check int) "distinct rows survive"
        (P.Oracle.distinct_rows oracle)
        (P.Oracle.distinct_rows back));
  (match P.Oracle.import ~generation:4 text with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "generation mismatch accepted");
  (match P.Oracle.import ~generation:3 "jmpsnap 1 3 0 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong magic accepted");
  match P.Oracle.import ~generation:3 "oraclesnap 1 3 5 5 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated snapshot accepted"

(* ------------------------- service tier ---------------------------- *)

let make_service ?(context_sensitive = false) ~oracle () =
  let b = Lazy.force tiny in
  let config =
    {
      P.Service.default_config with
      P.Service.threads = 1;
      max_batch = 8;
      max_wait = 0.0;
      context_sensitive;
      oracle;
    }
  in
  (b, P.Service.create ~config ~type_level:b.P.Suite.type_level b.P.Suite.pag)

(* Drive budget-free queries and table each response's comparable payload
   by id. Tier metadata (latency, steps, cached) is excluded on purpose:
   identity is defined over what the answer {e says}, (var, objects). *)
let drive_and_table svc queries =
  let table = Hashtbl.create 64 in
  Array.iteri
    (fun i v ->
      P.Service.submit svc
        ~now:(float_of_int i)
        ~respond:(fun r ->
          let payload =
            match r with
            | P.Svc_protocol.Answer { var; objects; _ } ->
                `Answer (var, objects)
            | P.Svc_protocol.Timeout { reason; _ } -> `Timeout reason
            | _ -> `Other
          in
          Hashtbl.replace table i payload)
        (P.Svc_protocol.Query
           {
             id = i;
             var = Printf.sprintf "#%d" v;
             budget = None;
             deadline_ms = None;
             trace = None;
           });
      ignore (P.Service.pump ~force:true svc ~now:(float_of_int i)))
    queries;
  P.Service.drain svc ~now:1e6;
  table

let test_service_identity () =
  let b, off = make_service ~oracle:false () in
  let _, on = make_service ~oracle:true () in
  let queries = b.P.Suite.queries in
  let off_t = drive_and_table off queries in
  let on_t = drive_and_table on queries in
  Array.iteri
    (fun i _ ->
      let payload side t =
        match Hashtbl.find_opt t i with
        | Some p -> p
        | None -> Alcotest.failf "%s arm lost request %d" side i
      in
      if payload "off" off_t <> payload "on" on_t then
        Alcotest.failf "request %d differs between the arms" i)
    queries;
  let m = P.Service.metrics on in
  Alcotest.(check int) "every request was an oracle hit"
    (Array.length queries)
    (P.Svc_metrics.get m P.Svc_metrics.Oracle_hit);
  (* The tier sits before the cache: oracle traffic never touches it. *)
  Alcotest.(check int) "no cache lookups behind the tier" 0
    (P.Svc_metrics.get m P.Svc_metrics.Cache_hit
    + P.Svc_metrics.get m P.Svc_metrics.Cache_miss);
  Alcotest.(check int) "off arm never counts oracle hits" 0
    (P.Svc_metrics.get (P.Service.metrics off) P.Svc_metrics.Oracle_hit);
  P.Service.shutdown off;
  P.Service.shutdown on

let submit_one svc ~id ~var ~budget ~deadline_ms =
  let got = ref None in
  P.Service.submit svc ~now:0.0
    ~respond:(fun r -> got := Some r)
    (P.Svc_protocol.Query { id; var; budget; deadline_ms; trace = None });
  ignore (P.Service.pump ~force:true svc ~now:0.0);
  P.Service.drain svc ~now:0.0;
  !got

let test_refined_falls_through () =
  let _, svc = make_service ~oracle:true () in
  let m = P.Service.metrics svc in
  (* A budgeted request must get the solver's semantics, not the oracle's
     exhaustive answer — it falls through and counts a miss. *)
  (match
     submit_one svc ~id:0 ~var:"#0" ~budget:(Some 4000) ~deadline_ms:None
   with
  | Some (P.Svc_protocol.Answer _) | Some (P.Svc_protocol.Timeout _) -> ()
  | _ -> Alcotest.fail "budgeted request got no solver response");
  Alcotest.(check int) "budget refinement is a miss" 1
    (P.Svc_metrics.get m P.Svc_metrics.Oracle_miss);
  (match
     submit_one svc ~id:1 ~var:"#0" ~budget:None
       ~deadline_ms:(Some 1_000_000.0)
   with
  | Some (P.Svc_protocol.Answer _) | Some (P.Svc_protocol.Timeout _) -> ()
  | _ -> Alcotest.fail "deadlined request got no solver response");
  Alcotest.(check int) "deadline refinement is a miss" 2
    (P.Svc_metrics.get m P.Svc_metrics.Oracle_miss);
  Alcotest.(check int) "refined traffic never hits" 0
    (P.Svc_metrics.get m P.Svc_metrics.Oracle_hit);
  P.Service.shutdown svc

let test_generation_death () =
  let b, svc = make_service ~oracle:true () in
  let engine = P.Service.engine svc in
  Alcotest.(check bool) "oracle live at start" true
    (P.Svc_engine.oracle engine <> None);
  (* Reloading the PAG bumps the generation; the oracle must die with it
     and budget-free traffic must degrade to the solver, counted as
     fallbacks — never answered from the dead oracle's rows. *)
  P.Svc_engine.load engine b.P.Suite.pag;
  Alcotest.(check bool) "oracle dead after load" true
    (P.Svc_engine.oracle engine = None);
  (match submit_one svc ~id:0 ~var:"#0" ~budget:None ~deadline_ms:None with
  | Some (P.Svc_protocol.Answer _) -> ()
  | _ -> Alcotest.fail "post-load request was not answered by the solver");
  Alcotest.(check int) "fallback counted" 1
    (P.Svc_metrics.get (P.Service.metrics svc) P.Svc_metrics.Oracle_fallback);
  P.Service.shutdown svc

let test_cs_service_never_builds () =
  let _, svc = make_service ~context_sensitive:true ~oracle:true () in
  Alcotest.(check bool) "CS engine built no oracle" true
    (P.Svc_engine.oracle (P.Service.engine svc) = None);
  (match submit_one svc ~id:0 ~var:"#0" ~budget:None ~deadline_ms:None with
  | Some (P.Svc_protocol.Answer _) -> ()
  | _ -> Alcotest.fail "CS request was not answered by the solver");
  Alcotest.(check int) "CS tier degrades as fallback" 1
    (P.Svc_metrics.get (P.Service.metrics svc) P.Svc_metrics.Oracle_fallback);
  (* And an import can never smuggle CI rows into a CS engine. *)
  let text =
    P.Oracle.export (P.Oracle.build ~generation:0 (Lazy.force tiny).P.Suite.pag)
  in
  (match P.Service.import_oracle svc text with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "CS service accepted an oracle import");
  P.Service.shutdown svc

let test_import_arms_tier () =
  let b, svc = make_service ~oracle:false () in
  let m = P.Service.metrics svc in
  (* Without the tier, budget-free traffic takes the normal path and no
     oracle counter moves. *)
  ignore (submit_one svc ~id:0 ~var:"#0" ~budget:None ~deadline_ms:None);
  Alcotest.(check int) "tier off: no oracle accounting" 0
    (P.Svc_metrics.get m P.Svc_metrics.Oracle_hit
    + P.Svc_metrics.get m P.Svc_metrics.Oracle_miss
    + P.Svc_metrics.get m P.Svc_metrics.Oracle_fallback);
  let donor = P.Oracle.build ~generation:0 b.P.Suite.pag in
  (match P.Service.import_oracle svc (P.Oracle.export donor) with
  | Error e -> Alcotest.failf "import refused: %s" e
  | Ok rows ->
      Alcotest.(check int) "imported row count" (P.Oracle.distinct_rows donor)
        rows);
  (* The joiner path: a successful import arms the tier. *)
  (match submit_one svc ~id:1 ~var:"#1" ~budget:None ~deadline_ms:None with
  | Some (P.Svc_protocol.Answer { objects; _ }) ->
      let pag = b.P.Suite.pag in
      let expect =
        P.Oracle.points_to_list donor 1
        |> List.map (Pag.obj_name pag)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list string)) "armed answer = donor rows" expect objects
  | _ -> Alcotest.fail "armed tier did not answer");
  Alcotest.(check int) "post-import hit" 1
    (P.Svc_metrics.get m P.Svc_metrics.Oracle_hit);
  P.Service.shutdown svc

(* --------------------- stats/exposition parity --------------------- *)

let counter_value fams name =
  List.find_map
    (function
      | P.Expo.Counter { name = n; samples = [ { P.Expo.value; _ } ]; _ }
        when n = name ->
          Some value
      | _ -> None)
    fams

let gauge_value fams name =
  List.find_map
    (function
      | P.Expo.Gauge { name = n; samples = [ { P.Expo.value; _ } ]; _ }
        when n = name ->
          Some value
      | _ -> None)
    fams

let stats_int stats field =
  match P.Json.member field stats with
  | Some (P.Json.Int i) -> i
  | _ -> Alcotest.failf "stats field %s missing or not an int" field

let test_metrics_parity () =
  let b, svc = make_service ~oracle:true () in
  ignore (drive_and_table svc b.P.Suite.queries);
  (* One refined request so the miss counter is nonzero too. *)
  ignore (submit_one svc ~id:999 ~var:"#0" ~budget:(Some 4000) ~deadline_ms:None);
  let stats = P.Service.metrics_json svc in
  let fams =
    match P.Expo.parse_families (P.Service.metrics_text svc) with
    | Ok fams -> fams
    | Error e -> Alcotest.failf "exposition did not parse: %s" e
  in
  List.iter
    (fun (stat_field, family) ->
      match counter_value fams family with
      | None -> Alcotest.failf "exposition lacks %s" family
      | Some v ->
          Alcotest.(check int)
            (Printf.sprintf "%s = %s" stat_field family)
            (stats_int stats stat_field) (int_of_float v))
    [
      ("oracle_hits", "parcfl_oracle_hits_total");
      ("oracle_misses", "parcfl_oracle_misses_total");
      ("oracle_fallbacks", "parcfl_oracle_fallbacks_total");
    ];
  Alcotest.(check bool) "hits actually flowed" true
    (stats_int stats "oracle_hits" > 0);
  Alcotest.(check bool) "miss actually flowed" true
    (stats_int stats "oracle_misses" > 0);
  (match gauge_value fams "parcfl_oracle_live" with
  | Some 1.0 -> ()
  | v -> Alcotest.failf "parcfl_oracle_live = %s" (match v with Some f -> string_of_float f | None -> "absent"));
  (match gauge_value fams "parcfl_oracle_distinct_rows" with
  | Some v ->
      Alcotest.(check int) "distinct rows agree"
        (stats_int stats "oracle_distinct_rows")
        (int_of_float v)
  | None -> Alcotest.fail "exposition lacks parcfl_oracle_distinct_rows");
  Alcotest.(check int) "stats reports the tier live" 1
    (stats_int stats "oracle_live");
  P.Service.shutdown svc

let suite =
  ( "oracle_tier",
    [
      Alcotest.test_case "oracle = Andersen on all profiles" `Slow
        test_all_profiles;
      Alcotest.test_case "oracle = budgetless demand" `Slow
        test_demand_agreement;
      QCheck_alcotest.to_alcotest prop_three_way_random;
      QCheck_alcotest.to_alcotest prop_may_alias_random;
      Alcotest.test_case "shape and bounds" `Quick test_shape;
      Alcotest.test_case "export/import round trip" `Quick test_export_import;
      Alcotest.test_case "service answers byte-identical" `Quick
        test_service_identity;
      Alcotest.test_case "refined requests fall through" `Quick
        test_refined_falls_through;
      Alcotest.test_case "generation death falls back" `Quick
        test_generation_death;
      Alcotest.test_case "CS service never builds/imports" `Quick
        test_cs_service_never_builds;
      Alcotest.test_case "import arms the tier" `Quick test_import_arms_tier;
      Alcotest.test_case "stats/exposition parity" `Quick test_metrics_parity;
    ] )
