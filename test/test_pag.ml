module Pag = Parcfl.Pag
module B = Parcfl.Pag.Build

(* A small PAG: o0 -> x -> y (assign), y = p.f / q.f = z, param/ret. *)
let small () =
  let b = B.create () in
  let x = B.add_var b ~typ:1 ~app:true "x" in
  let y = B.add_var b ~typ:1 ~app:true "y" in
  let p = B.add_var b "p" in
  let q = B.add_var b "q" in
  let z = B.add_var b "z" in
  let g = B.add_var b ~global:true "g" in
  let f = B.add_var b "f" in
  let o0 = B.add_obj b ~typ:1 "o0" in
  B.new_edge b ~dst:x o0;
  B.assign b ~dst:y ~src:x;
  B.assign_global b ~dst:g ~src:y;
  B.load b ~dst:y ~base:p 3;
  B.store b ~base:q 3 ~src:z;
  B.param b ~dst:f ~site:11 ~src:x;
  B.ret b ~dst:z ~site:11 ~src:f;
  B.mark_ci_site b 12;
  (B.freeze b, (x, y, p, q, z, g, f, o0))

let test_sizes () =
  let pag, _ = small () in
  Alcotest.(check int) "vars" 7 (Pag.n_vars pag);
  Alcotest.(check int) "objs" 1 (Pag.n_objs pag);
  Alcotest.(check int) "nodes" 8 (Pag.n_nodes pag);
  Alcotest.(check int) "edges" 7 (Pag.n_edges pag);
  Alcotest.(check int) "fields" 4 (Pag.n_fields pag)

let test_attributes () =
  let pag, (x, _, _, _, _, g, _, o0) = small () in
  Alcotest.(check string) "var name" "x" (Pag.var_name pag x);
  Alcotest.(check string) "obj name" "o0" (Pag.obj_name pag o0);
  Alcotest.(check bool) "global" true (Pag.var_is_global pag g);
  Alcotest.(check bool) "local" false (Pag.var_is_global pag x);
  Alcotest.(check int) "typ" 1 (Pag.var_typ pag x);
  Alcotest.(check bool) "app" true (Pag.var_is_app pag x);
  Alcotest.(check bool) "ci site" true (Pag.site_is_ci pag 12);
  Alcotest.(check bool) "cs site" false (Pag.site_is_ci pag 11);
  Alcotest.(check (list int)) "app locals" [ 0; 1 ]
    (Array.to_list (Pag.app_locals pag))

let test_adjacency () =
  let pag, (x, y, p, q, z, g, f, o0) = small () in
  Alcotest.(check (list int)) "new_in x" [ o0 ] (Array.to_list (Pag.new_in pag x));
  Alcotest.(check (list int)) "new_out o0" [ x ] (Array.to_list (Pag.new_out pag o0));
  Alcotest.(check (list int)) "assign_in y" [ x ] (Array.to_list (Pag.assign_in pag y));
  Alcotest.(check (list int)) "assign_out x" [ y ] (Array.to_list (Pag.assign_out pag x));
  Alcotest.(check (list int)) "gassign_in g" [ y ] (Array.to_list (Pag.gassign_in pag g));
  Alcotest.(check (list (pair int int))) "load_in y" [ (3, p) ]
    (Array.to_list (Pag.load_in pag y));
  Alcotest.(check (list (pair int int))) "store_out z" [ (3, q) ]
    (Array.to_list (Pag.store_out pag z));
  Alcotest.(check (list (pair int int))) "stores_of_field" [ (q, z) ]
    (Array.to_list (Pag.stores_of_field pag 3));
  Alcotest.(check (list (pair int int))) "loads_of_field" [ (y, p) ]
    (Array.to_list (Pag.loads_of_field pag 3));
  Alcotest.(check (list (pair int int))) "stores of absent field" []
    (Array.to_list (Pag.stores_of_field pag 99));
  Alcotest.(check (list (pair int int))) "param_in f" [ (11, x) ]
    (Array.to_list (Pag.param_in pag f));
  Alcotest.(check (list (pair int int))) "ret_in z" [ (11, f) ]
    (Array.to_list (Pag.ret_in pag z))

let test_iter_edges () =
  let pag, _ = small () in
  let n = ref 0 in
  Pag.iter_edges pag (fun _ -> incr n);
  Alcotest.(check int) "iter_edges count = n_edges" (Pag.n_edges pag) !n

let test_direct_neighbors () =
  let pag, (x, y, _, _, z, g, f, _) = small () in
  let neighbors v =
    let out = ref [] in
    Pag.iter_direct_neighbors pag v (fun w -> out := w :: !out);
    List.sort_uniq compare !out
  in
  (* x: assign to y, param to f. Loads/stores excluded (eq. 5). *)
  Alcotest.(check (list int)) "x neighbors" (List.sort compare [ y; f ])
    (neighbors x);
  Alcotest.(check (list int)) "g neighbors" [ y ] (neighbors g);
  let succs v =
    let out = ref [] in
    Pag.iter_direct_succs pag v (fun w -> out := w :: !out);
    List.sort_uniq compare !out
  in
  Alcotest.(check (list int)) "x succs" (List.sort compare [ y; f ]) (succs x);
  Alcotest.(check (list int)) "f succs" [ z ] (succs f);
  Alcotest.(check (list int)) "z succs" [] (succs z)

let test_iter_adjacency () =
  let pag, (x, y, p, q, z, g, f, o0) = small () in
  let row1 iter v =
    let out = ref [] in
    iter pag v (fun a -> out := a :: !out);
    List.rev !out
  in
  let row2 iter v =
    let out = ref [] in
    iter pag v (fun a b -> out := (a, b) :: !out);
    List.rev !out
  in
  Alcotest.(check (list int)) "iter_new_in x" [ o0 ] (row1 Pag.iter_new_in x);
  Alcotest.(check (list int)) "iter_new_out o0" [ x ]
    (row1 Pag.iter_new_out o0);
  Alcotest.(check (list int)) "iter_assign_in y" [ x ]
    (row1 Pag.iter_assign_in y);
  Alcotest.(check (list int)) "iter_gassign_in g" [ y ]
    (row1 Pag.iter_gassign_in g);
  Alcotest.(check (list (pair int int))) "iter_load_in y" [ (3, p) ]
    (row2 Pag.iter_load_in y);
  Alcotest.(check (list (pair int int))) "iter_store_out z" [ (3, q) ]
    (row2 Pag.iter_store_out z);
  Alcotest.(check (list (pair int int))) "iter_param_in f" [ (11, x) ]
    (row2 Pag.iter_param_in f);
  Alcotest.(check (list (pair int int))) "iter_ret_in z" [ (11, f) ]
    (row2 Pag.iter_ret_in z);
  Alcotest.(check (list (pair int int))) "iter_stores_of_field" [ (q, z) ]
    (row2 Pag.iter_stores_of_field 3);
  Alcotest.(check (list (pair int int))) "iter_loads_of_field" [ (y, p) ]
    (row2 Pag.iter_loads_of_field 3);
  Alcotest.(check bool) "has_load_in y" true (Pag.has_load_in pag y);
  Alcotest.(check bool) "has_load_in x" false (Pag.has_load_in pag x);
  Alcotest.(check bool) "has_store_out z" true (Pag.has_store_out pag z);
  Alcotest.(check bool) "has_stores_of_field 3" true
    (Pag.has_stores_of_field pag 3);
  Alcotest.(check bool) "has_stores_of_field absent" false
    (Pag.has_stores_of_field pag 2)

let test_field_bounds () =
  let pag, _ = small () in
  (* Field ids at or beyond n_fields are interned-but-unused: legal, empty. *)
  let beyond = Pag.n_fields pag + 5 in
  Alcotest.(check (list (pair int int))) "stores beyond n_fields" []
    (Array.to_list (Pag.stores_of_field pag beyond));
  Alcotest.(check (list (pair int int))) "loads beyond n_fields" []
    (Array.to_list (Pag.loads_of_field pag beyond));
  let count = ref 0 in
  Pag.iter_stores_of_field pag beyond (fun _ _ -> incr count);
  Pag.iter_loads_of_field pag beyond (fun _ _ -> incr count);
  Alcotest.(check int) "iterators beyond n_fields yield nothing" 0 !count;
  Alcotest.(check bool) "has_stores beyond" false
    (Pag.has_stores_of_field pag beyond);
  (* Negative ids are caller bugs, not interned fields: rejected loudly. *)
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument on -1" name
  in
  expect_invalid "stores_of_field" (fun () ->
      ignore (Pag.stores_of_field pag (-1)));
  expect_invalid "loads_of_field" (fun () ->
      ignore (Pag.loads_of_field pag (-1)));
  expect_invalid "iter_stores_of_field" (fun () ->
      Pag.iter_stores_of_field pag (-1) (fun _ _ -> ()));
  expect_invalid "iter_loads_of_field" (fun () ->
      Pag.iter_loads_of_field pag (-1) (fun _ _ -> ()))

(* CSR-vs-snapshot parity on randomized graphs: the zero-alloc iterators and
   the allocating snapshot arrays are two views of the same frozen rows and
   must agree element-for-element, in order, for every node. *)
let prop_csr_parity =
  let gen =
    QCheck.make
      ~print:(fun ops -> string_of_int (List.length ops))
      QCheck.Gen.(
        small_list
          (tup4 (int_bound 6) (int_bound 11) (int_bound 11) (int_bound 4)))
  in
  QCheck.Test.make ~name:"CSR iterators match snapshot arrays" ~count:100 gen
    (fun ops ->
      let b = B.create () in
      let vars = Array.init 12 (fun i -> B.add_var b (Printf.sprintf "v%d" i)) in
      let objs = Array.init 4 (fun i -> B.add_obj b (Printf.sprintf "o%d" i)) in
      List.iter
        (fun (kind, a, c, aux) ->
          let va = vars.(a) and vc = vars.(c) in
          match kind with
          | 0 -> B.new_edge b ~dst:va objs.(aux mod Array.length objs)
          | 1 -> B.assign b ~dst:va ~src:vc
          | 2 -> B.assign_global b ~dst:va ~src:vc
          | 3 -> B.load b ~dst:va ~base:vc aux
          | 4 -> B.store b ~base:va aux ~src:vc
          | 5 -> B.param b ~dst:va ~site:aux ~src:vc
          | _ -> B.ret b ~dst:va ~site:aux ~src:vc)
        ops;
      let pag = B.freeze b in
      let row1 iter v =
        let out = ref [] in
        iter pag v (fun a -> out := a :: !out);
        List.rev !out
      in
      let row2 iter v =
        let out = ref [] in
        iter pag v (fun a b -> out := (a, b) :: !out);
        List.rev !out
      in
      let ok = ref true in
      let check_row got want = if got <> Array.to_list want then ok := false in
      Array.iter
        (fun v ->
          check_row (row1 Pag.iter_new_in v) (Pag.new_in pag v);
          check_row (row1 Pag.iter_assign_in v) (Pag.assign_in pag v);
          check_row (row1 Pag.iter_assign_out v) (Pag.assign_out pag v);
          check_row (row1 Pag.iter_gassign_in v) (Pag.gassign_in pag v);
          check_row (row1 Pag.iter_gassign_out v) (Pag.gassign_out pag v);
          check_row (row2 Pag.iter_load_in v) (Pag.load_in pag v);
          check_row (row2 Pag.iter_store_out v) (Pag.store_out pag v);
          check_row (row2 Pag.iter_param_in v) (Pag.param_in pag v);
          check_row (row2 Pag.iter_param_out v) (Pag.param_out pag v);
          check_row (row2 Pag.iter_ret_in v) (Pag.ret_in pag v);
          check_row (row2 Pag.iter_ret_out v) (Pag.ret_out pag v);
          if Pag.has_load_in pag v <> (Array.length (Pag.load_in pag v) > 0)
          then ok := false;
          if Pag.has_store_out pag v <> (Array.length (Pag.store_out pag v) > 0)
          then ok := false)
        vars;
      Array.iter
        (fun o -> check_row (row1 Pag.iter_new_out o) (Pag.new_out pag o))
        objs;
      for f = 0 to Pag.n_fields pag - 1 do
        check_row (row2 Pag.iter_stores_of_field f) (Pag.stores_of_field pag f);
        check_row (row2 Pag.iter_loads_of_field f) (Pag.loads_of_field pag f);
        if Pag.has_stores_of_field pag f
           <> (Array.length (Pag.stores_of_field pag f) > 0)
        then ok := false
      done;
      !ok)

let test_builder_validation () =
  let b = B.create () in
  let x = B.add_var b "x" in
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Pag.Build.assign: unknown variable 5") (fun () ->
      B.assign b ~dst:x ~src:5);
  Alcotest.check_raises "unknown obj"
    (Invalid_argument "Pag.Build.new_edge: unknown object 0") (fun () ->
      B.new_edge b ~dst:x 0)

let test_dot () =
  let pag, _ = small () in
  let dot = Parcfl.Dot.to_string pag in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let contains needle =
    let ln = String.length needle and lh = String.length dot in
    let rec go i = i + ln <= lh && (String.sub dot i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has new edge" true (contains "new");
  Alcotest.(check bool) "has ld(3)" true (contains "ld(3)")

let suite =
  ( "pag",
    [
      Alcotest.test_case "sizes" `Quick test_sizes;
      Alcotest.test_case "attributes" `Quick test_attributes;
      Alcotest.test_case "adjacency" `Quick test_adjacency;
      Alcotest.test_case "iterator adjacency" `Quick test_iter_adjacency;
      Alcotest.test_case "field id bounds" `Quick test_field_bounds;
      QCheck_alcotest.to_alcotest prop_csr_parity;
      Alcotest.test_case "iter_edges" `Quick test_iter_edges;
      Alcotest.test_case "direct neighbors" `Quick test_direct_neighbors;
      Alcotest.test_case "builder validation" `Quick test_builder_validation;
      Alcotest.test_case "dot export" `Quick test_dot;
    ] )
