(* The execution modes: mode parsing, the real parallel runner (naive mode
   is deterministic per query, so parallel must equal sequential exactly),
   soundness of shared-mode results, and determinism of the simulator. *)
module Pag = Parcfl.Pag
module Mode = Parcfl.Mode
module Runner = Parcfl.Runner
module Report = Parcfl.Report
module Query = Parcfl.Query
module Config = Parcfl.Config

let bench = lazy (Parcfl.Suite.build Parcfl.Profile.tiny)

let config = Config.with_budget 2_000 Config.default

let run ?(mode = Mode.Seq) ?(threads = 1) ?(sim = false) () =
  let b = Lazy.force bench in
  if sim then
    Runner.simulate ~tau_f:5 ~tau_u:50 ~type_level:b.Parcfl.Suite.type_level
      ~solver_config:config ~mode ~threads ~queries:b.Parcfl.Suite.queries
      b.Parcfl.Suite.pag
  else
    Runner.run ~tau_f:5 ~tau_u:50 ~type_level:b.Parcfl.Suite.type_level
      ~solver_config:config ~mode ~threads ~queries:b.Parcfl.Suite.queries
      b.Parcfl.Suite.pag

let results_sorted report =
  let tbl = Report.results_by_var report in
  Hashtbl.fold
    (fun v r acc -> (v, List.sort compare (Query.objects r)) :: acc)
    tbl []
  |> List.sort compare

let test_mode_strings () =
  List.iter
    (fun m ->
      match Mode.of_string (Mode.to_string m) with
      | Ok m' when m = m' -> ()
      | _ -> Alcotest.failf "mode %s does not roundtrip" (Mode.to_string m))
    Mode.all;
  (match Mode.of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus mode accepted");
  Alcotest.(check bool) "sharing flags" true
    (Mode.uses_sharing Mode.Share
    && Mode.uses_sharing Mode.Share_sched
    && (not (Mode.uses_sharing Mode.Naive))
    && not (Mode.uses_scheduling Mode.Share))

let test_report_shape () =
  let b = Lazy.force bench in
  let r = run () in
  Alcotest.(check int) "one outcome per query"
    (Array.length b.Parcfl.Suite.queries)
    (Array.length r.Report.r_queries);
  (* Outcome vars are exactly the queries (order preserved for seq). *)
  Alcotest.(check (list int)) "vars in issue order"
    (Array.to_list b.Parcfl.Suite.queries)
    (Array.to_list (Array.map (fun q -> q.Report.qs_var) r.Report.r_queries));
  Alcotest.(check bool) "walked counted" true (Report.total_walked r > 0);
  Alcotest.(check int) "no jumps without sharing" 0 (Report.n_jumps r)

let test_naive_parallel_equals_seq () =
  (* Without sharing each query is independent and deterministic, so any
     thread count must produce identical results. *)
  let seq = results_sorted (run ~mode:Mode.Seq ()) in
  List.iter
    (fun threads ->
      let par = results_sorted (run ~mode:Mode.Naive ~threads ()) in
      if par <> seq then
        Alcotest.failf "naive/%d differs from sequential" threads)
    [ 1; 2; 4 ]

let test_shared_parallel_sound () =
  (* With sharing, completed queries must stay within the context-
     insensitive over-approximation (Andersen). *)
  let b = Lazy.force bench in
  let andersen = Parcfl.Andersen.solve b.Parcfl.Suite.pag in
  List.iter
    (fun (mode, threads) ->
      let r = run ~mode ~threads () in
      Array.iter
        (fun (o : Query.outcome) ->
          match o.Query.result with
          | Query.Out_of_budget -> ()
          | Query.Points_to _ ->
              let objs = Query.objects o.Query.result in
              let ref_ =
                Parcfl.Andersen.points_to_list andersen o.Query.var
              in
              if not (List.for_all (fun x -> List.mem x ref_) objs) then
                Alcotest.failf "unsound result for var %d under %s/%d"
                  o.Query.var (Mode.to_string mode) threads)
        r.Report.r_outcomes)
    [ (Mode.Share, 2); (Mode.Share_sched, 2); (Mode.Share, 4) ]

let test_scheduled_covers_all_queries () =
  let b = Lazy.force bench in
  let r = run ~mode:Mode.Share_sched ~threads:2 () in
  let vars =
    List.sort compare
      (Array.to_list (Array.map (fun q -> q.Report.qs_var) r.Report.r_queries))
  in
  Alcotest.(check (list int)) "every query answered once"
    (List.sort compare (Array.to_list b.Parcfl.Suite.queries))
    vars;
  Alcotest.(check bool) "Sg recorded" true (r.Report.r_mean_group_size > 0.0)

let test_simulator_deterministic () =
  let r1 = run ~mode:Mode.Share_sched ~threads:4 ~sim:true () in
  let r2 = run ~mode:Mode.Share_sched ~threads:4 ~sim:true () in
  Alcotest.(check (option int)) "same makespan" r1.Report.r_sim_makespan
    r2.Report.r_sim_makespan;
  Alcotest.(check bool) "same outcomes" true
    (results_sorted r1 = results_sorted r2);
  Alcotest.(check bool) "makespan set" true (r1.Report.r_sim_makespan <> None)

let test_simulator_scales () =
  (* More virtual threads cannot increase the makespan... not strictly true
     with sharing (less sharing at higher parallelism), but it holds for
     the no-sharing naive mode up to rounding. *)
  let m t =
    Option.get (run ~mode:Mode.Naive ~threads:t ~sim:true ()).Report.r_sim_makespan
  in
  let m1 = m 1 and m4 = m 4 in
  Alcotest.(check bool) "naive sim speeds up" true (m4 < m1);
  Alcotest.(check bool) "at most linear" true (m4 * 4 >= m1)

let test_seq_forces_one_thread () =
  let r = run ~mode:Mode.Seq ~threads:8 () in
  Alcotest.(check int) "threads forced to 1" 1 r.Report.r_threads

let test_per_query_cost () =
  let r = run () in
  let costs = Runner.per_query_cost r in
  Alcotest.(check int) "one cost per query"
    (Array.length r.Report.r_queries)
    (Array.length costs);
  Array.iter
    (fun c -> if c < 1 then Alcotest.fail "cost must be >= 1")
    costs

let test_poisoned_query_raises () =
  (* A query the solver cannot even start (a var id far outside the PAG)
     must surface as an exception from the runner — never as a silently
     fabricated outcome in the report. *)
  let b = Lazy.force bench in
  let poisoned = Array.append b.Parcfl.Suite.queries [| 1_000_000 |] in
  let attempt sim =
    if sim then
      Runner.simulate ~type_level:b.Parcfl.Suite.type_level
        ~solver_config:config ~mode:Mode.Naive ~threads:2 ~queries:poisoned
        b.Parcfl.Suite.pag
    else
      Runner.run ~type_level:b.Parcfl.Suite.type_level
        ~solver_config:config ~mode:Mode.Naive ~threads:2 ~queries:poisoned
        b.Parcfl.Suite.pag
  in
  List.iter
    (fun sim ->
      let raised = try ignore (attempt sim); false with _ -> true in
      Alcotest.(check bool)
        (if sim then "simulate raises" else "run raises")
        true raised)
    [ false; true ]

let test_latency_recorded () =
  let r = run ~mode:Mode.Share_sched ~threads:2 () in
  Array.iter
    (fun q ->
      if q.Report.qs_latency_us < 0.0 then
        Alcotest.fail "negative latency")
    r.Report.r_queries;
  Alcotest.(check bool) "some query took measurable time" true
    (Array.exists (fun q -> q.Report.qs_latency_us > 0.0) r.Report.r_queries);
  (* Simulated latency counts virtual steps: at least 1 per query. *)
  let rs = run ~mode:Mode.Share_sched ~threads:4 ~sim:true () in
  Array.iter
    (fun q ->
      if q.Report.qs_latency_us < 1.0 then
        Alcotest.fail "virtual latency below one step")
    rs.Report.r_queries

let suite =
  ( "par",
    [
      Alcotest.test_case "mode strings" `Quick test_mode_strings;
      Alcotest.test_case "report shape" `Quick test_report_shape;
      Alcotest.test_case "naive parallel = sequential" `Quick
        test_naive_parallel_equals_seq;
      Alcotest.test_case "shared parallel sound" `Quick
        test_shared_parallel_sound;
      Alcotest.test_case "scheduling covers all queries" `Quick
        test_scheduled_covers_all_queries;
      Alcotest.test_case "simulator deterministic" `Quick
        test_simulator_deterministic;
      Alcotest.test_case "simulator scales (naive)" `Quick test_simulator_scales;
      Alcotest.test_case "seq forces one thread" `Quick
        test_seq_forces_one_thread;
      Alcotest.test_case "per-query cost" `Quick test_per_query_cost;
      Alcotest.test_case "poisoned query raises" `Quick
        test_poisoned_query_raises;
      Alcotest.test_case "latency recorded" `Quick test_latency_recorded;
    ] )
