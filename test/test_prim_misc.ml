(* Union_find, Rng, Pair_set, Intern. *)
module Union_find = Parcfl.Union_find
module Rng = Parcfl.Rng
module Pair_set = Parcfl.Pair_set
module Intern = Parcfl.Intern

(* --------------------------- union-find --------------------------- *)

let test_uf_basic () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial classes" 6 (Union_find.n_classes uf);
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Union_find.union uf 4 5;
  Alcotest.(check bool) "0~2" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "0!~3" false (Union_find.same uf 0 3);
  Alcotest.(check int) "classes" 3 (Union_find.n_classes uf);
  let classes = Union_find.classes uf in
  let sizes =
    Array.to_list classes
    |> List.filter (fun c -> c <> [])
    |> List.map List.length
    |> List.sort compare
  in
  Alcotest.(check (list int)) "class sizes" [ 1; 2; 3 ] sizes

let prop_uf_transitive =
  QCheck.Test.make ~name:"union-find equivalence is transitive" ~count:200
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> Union_find.union uf a b) pairs;
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if
              Union_find.same uf a b && Union_find.same uf b c
              && not (Union_find.same uf a c)
            then ok := false
          done
        done
      done;
      !ok)

(* ------------------------------ rng ------------------------------- *)

let test_rng_determinism () =
  let a = Rng.of_string_seed "tomcat" and b = Rng.of_string_seed "tomcat" in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.of_string_seed "xalan" in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let r = Rng.of_string_seed "bounds" in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    if x < 0 || x >= 7 then Alcotest.fail "Rng.int out of bounds";
    let f = Rng.float r 2.5 in
    if f < 0.0 || f >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_shuffle () =
  let r = Rng.of_string_seed "shuffle" in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_rng_split () =
  let r = Rng.of_string_seed "split" in
  let child = Rng.split r in
  let xs = List.init 20 (fun _ -> Rng.int child 100) in
  let ys = List.init 20 (fun _ -> Rng.int r 100) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* ---------------------------- pair_set ---------------------------- *)

let test_pair_set_basic () =
  let t = Pair_set.create () in
  Alcotest.(check bool) "fresh" true (Pair_set.add t 1 2);
  Alcotest.(check bool) "dup" false (Pair_set.add t 1 2);
  Alcotest.(check bool) "other ctx" true (Pair_set.add t 1 3);
  Alcotest.(check bool) "other var" true (Pair_set.add t 2 2);
  Alcotest.(check int) "cardinal" 3 (Pair_set.cardinal t);
  Alcotest.(check bool) "mem" true (Pair_set.mem t 1 3);
  Alcotest.(check bool) "not mem" false (Pair_set.mem t 3 1);
  Alcotest.(check (list int)) "find_firsts" [ 3; 2 ] (Pair_set.find_firsts t 1);
  Alcotest.(check (list int)) "find_firsts absent" [] (Pair_set.find_firsts t 9);
  Alcotest.(check bool) "mem_first" true (Pair_set.mem_first t 2);
  Alcotest.(check (list (pair int int)))
    "insertion order" [ (1, 2); (1, 3); (2, 2) ] (Pair_set.to_list t);
  Alcotest.(check (list int)) "firsts order" [ 1; 2 ] (Pair_set.firsts t)

(* The by-first chain index is built lazily on the first grouped lookup;
   interleaving adds with [iter_firsts]/[mem_first] forces repeated
   incremental replays and must give the same answers as [find_firsts]. *)
let test_pair_set_lazy_chains () =
  let t = Pair_set.create () in
  let firsts_via_iter a =
    let out = ref [] in
    Pair_set.iter_firsts t a (fun b -> out := b :: !out);
    List.rev !out
  in
  for b = 0 to 9 do
    ignore (Pair_set.add t (b mod 3) b);
    (* Query mid-stream: chains indexed so far must already be correct. *)
    Alcotest.(check (list int))
      (Printf.sprintf "iter_firsts agrees after add %d" b)
      (Pair_set.find_firsts t (b mod 3))
      (firsts_via_iter (b mod 3))
  done;
  Alcotest.(check (list int)) "chain 0" [ 9; 6; 3; 0 ] (firsts_via_iter 0);
  Alcotest.(check bool) "mem_first" true (Pair_set.mem_first t 2);
  ignore (Pair_set.add t 7 70);
  Alcotest.(check (list int)) "chain added after lookup" [ 70 ]
    (firsts_via_iter 7);
  Pair_set.clear t;
  Alcotest.(check int) "cleared" 0 (Pair_set.cardinal t);
  Alcotest.(check (list int)) "chains reset" [] (firsts_via_iter 0);
  ignore (Pair_set.add t 0 42);
  Alcotest.(check (list int)) "reuse after clear" [ 42 ] (firsts_via_iter 0)

let prop_pair_set_model =
  QCheck.Test.make ~name:"pair_set agrees with a list model" ~count:200
    QCheck.(list (pair (int_bound 20) (int_bound 20)))
    (fun pairs ->
      let t = Pair_set.create () in
      let model = ref [] in
      List.iter
        (fun (a, b) ->
          let fresh = not (List.mem (a, b) !model) in
          if fresh then model := !model @ [ (a, b) ];
          if Pair_set.add t a b <> fresh then failwith "add disagreed")
        pairs;
      Pair_set.to_list t = !model
      && Pair_set.cardinal t = List.length !model)

(* ----------------------------- intern ----------------------------- *)

let test_intern () =
  let t = Intern.create () in
  let a = Intern.intern t "foo" in
  let b = Intern.intern t "bar" in
  let a' = Intern.intern t "foo" in
  Alcotest.(check int) "stable" a a';
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check string) "name a" "foo" (Intern.name t a);
  Alcotest.(check (option int)) "find" (Some b) (Intern.find_opt t "bar");
  Alcotest.(check (option int)) "find absent" None (Intern.find_opt t "baz");
  Alcotest.(check int) "count" 2 (Intern.count t);
  Alcotest.check_raises "bad id" (Invalid_argument "Intern.name: unknown id")
    (fun () -> ignore (Intern.name t 99))

let suite =
  ( "prim-misc",
    [
      Alcotest.test_case "union-find basic" `Quick test_uf_basic;
      QCheck_alcotest.to_alcotest prop_uf_transitive;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
      Alcotest.test_case "rng split" `Quick test_rng_split;
      Alcotest.test_case "pair_set basic" `Quick test_pair_set_basic;
      Alcotest.test_case "pair_set lazy chains" `Quick
        test_pair_set_lazy_chains;
      QCheck_alcotest.to_alcotest prop_pair_set_model;
      Alcotest.test_case "intern" `Quick test_intern;
    ] )
