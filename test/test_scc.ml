module Scc = Parcfl.Scc

let compute n edges =
  let adj = Array.make n [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  (Scc.compute ~n ~succs:(fun v -> adj.(v)), fun v -> adj.(v))

let test_chain () =
  let scc, _ = compute 4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "4 comps" 4 scc.Scc.n_comps;
  (* Reverse topological numbering: an edge u->v has comp(u) >= comp(v). *)
  Alcotest.(check bool) "topo order" true
    (scc.Scc.comp_of.(0) > scc.Scc.comp_of.(1)
    && scc.Scc.comp_of.(1) > scc.Scc.comp_of.(2)
    && scc.Scc.comp_of.(2) > scc.Scc.comp_of.(3))

let test_cycle () =
  let scc, _ = compute 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 3) ] in
  Alcotest.(check int) "2 comps" 2 scc.Scc.n_comps;
  Alcotest.(check bool) "0,1,2 together" true
    (scc.Scc.comp_of.(0) = scc.Scc.comp_of.(1)
    && scc.Scc.comp_of.(1) = scc.Scc.comp_of.(2));
  Alcotest.(check bool) "3,4 together" true
    (scc.Scc.comp_of.(3) = scc.Scc.comp_of.(4));
  Alcotest.(check bool) "cycle comp not trivial" false
    (Scc.is_trivial scc scc.Scc.comp_of.(0))

let test_self_loop () =
  let scc, _ = compute 2 [ (0, 0); (0, 1) ] in
  Alcotest.(check int) "2 comps" 2 scc.Scc.n_comps;
  (* A self-loop keeps the component a singleton. *)
  Alcotest.(check bool) "trivial by member count" true
    (Scc.is_trivial scc scc.Scc.comp_of.(0))

(* The regression has_self_loop exists to prevent: a self-looped singleton
   is trivial by member count but still cyclic — callers asking "does this
   component contain a cycle?" must not use is_trivial alone. *)
let test_has_self_loop () =
  let scc, succs = compute 4 [ (0, 0); (0, 1); (2, 3); (3, 2) ] in
  Alcotest.(check bool) "self-looped singleton is cyclic" true
    (Scc.has_self_loop scc ~succs scc.Scc.comp_of.(0));
  Alcotest.(check bool) "but still trivial by member count" true
    (Scc.is_trivial scc scc.Scc.comp_of.(0));
  Alcotest.(check bool) "plain singleton is acyclic" false
    (Scc.has_self_loop scc ~succs scc.Scc.comp_of.(1));
  Alcotest.(check bool) "multi-member component is cyclic" true
    (Scc.has_self_loop scc ~succs scc.Scc.comp_of.(2))

let test_condensation () =
  let scc, succs = compute 6 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (4, 5) ] in
  let dag = Scc.condensation scc ~succs in
  Alcotest.(check int) "4 comps" 4 scc.Scc.n_comps;
  (* DAG edges never point upward in the id order. *)
  Array.iteri
    (fun c succ ->
      List.iter
        (fun c' ->
          Alcotest.(check bool) "reverse-topo edge" true (c' < c))
        succ)
    dag;
  (* No self loops. *)
  Array.iteri
    (fun c succ ->
      Alcotest.(check bool) "no self loop" false (List.mem c succ))
    dag

let test_longest_path () =
  (* 0 -> 1 -> 2 and 0 -> 2: path 0,1,2 has weight 3 through each node. *)
  let scc, succs = compute 3 [ (0, 1); (1, 2); (0, 2) ] in
  let dag = Scc.condensation scc ~succs in
  let weight c = List.length scc.Scc.members.(c) in
  let through = Scc.longest_path_through ~dag ~weight in
  Array.iteri
    (fun v _ ->
      Alcotest.(check int)
        (Printf.sprintf "node %d on heaviest path" v)
        3
        through.(scc.Scc.comp_of.(v)))
    [| 0; 1; 2 |]

let test_longest_path_branch () =
  (* 0 -> 1, 0 -> 2 -> 3: node 1 lies on a path of 2, node 3 on a path of 3. *)
  let scc, succs = compute 4 [ (0, 1); (0, 2); (2, 3) ] in
  let dag = Scc.condensation scc ~succs in
  let weight c = List.length scc.Scc.members.(c) in
  let through = Scc.longest_path_through ~dag ~weight in
  Alcotest.(check int) "short branch" 2 through.(scc.Scc.comp_of.(1));
  Alcotest.(check int) "long branch" 3 through.(scc.Scc.comp_of.(3));
  Alcotest.(check int) "root" 3 through.(scc.Scc.comp_of.(0))

(* Property: same component iff mutually reachable (checked against a
   transitive closure on small random graphs). *)
let prop_scc_reachability =
  let gen =
    QCheck.Gen.(
      sized_size (int_bound 7) (fun n ->
          let n = n + 1 in
          list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1)))
          >>= fun edges -> return (n, edges)))
  in
  QCheck.Test.make ~name:"same comp iff mutually reachable" ~count:300
    (QCheck.make gen) (fun (n, edges) ->
      let scc, _ = compute n edges in
      let reach = Array.make_matrix n n false in
      for v = 0 to n - 1 do
        reach.(v).(v) <- true
      done;
      List.iter (fun (u, v) -> reach.(u).(v) <- true) edges;
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if reach.(i).(k) && reach.(k).(j) then reach.(i).(j) <- true
          done
        done
      done;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let same = scc.Scc.comp_of.(i) = scc.Scc.comp_of.(j) in
          let mutual = reach.(i).(j) && reach.(j).(i) in
          if same <> mutual then ok := false
        done
      done;
      !ok)

let suite =
  ( "scc",
    [
      Alcotest.test_case "chain" `Quick test_chain;
      Alcotest.test_case "cycle" `Quick test_cycle;
      Alcotest.test_case "self loop" `Quick test_self_loop;
      Alcotest.test_case "has_self_loop vs is_trivial" `Quick
        test_has_self_loop;
      Alcotest.test_case "condensation" `Quick test_condensation;
      Alcotest.test_case "longest path (diamondish)" `Quick test_longest_path;
      Alcotest.test_case "longest path (branch)" `Quick test_longest_path_branch;
      QCheck_alcotest.to_alcotest prop_scc_reachability;
    ] )
