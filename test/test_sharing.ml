(* Data sharing: the jmp store's insert-if-absent and threshold semantics,
   shortcut-taking, early termination, and the precision relationship
   between shared and unshared runs. *)
module Pag = Parcfl.Pag
module B = Parcfl.Pag.Build
module Ctx = Parcfl.Ctx
module Config = Parcfl.Config
module Solver = Parcfl.Solver
module Query = Parcfl.Query
module Jmp_store = Parcfl.Jmp_store
module Hooks = Parcfl.Hooks

let objs outcome = List.sort compare (Query.objects outcome.Query.result)

(* ------------------------- store semantics ------------------------ *)

let test_store_basics () =
  let st = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let h = Jmp_store.hooks st in
  let c = Ctx.empty in
  Alcotest.(check int) "empty" 0 (Jmp_store.n_jumps st);
  h.Hooks.record_finished Hooks.Bwd 5 c ~cost:10 ~targets:[| (1, c) |];
  h.Hooks.record_finished Hooks.Bwd 5 c ~cost:99 ~targets:[||];
  Alcotest.(check int) "first finished wins" 1 (Jmp_store.n_finished st);
  (match (h.Hooks.lookup Hooks.Bwd 5 c ~steps:0).Hooks.finished with
  | Some { Hooks.cost = 10; _ } -> ()
  | _ -> Alcotest.fail "expected the first record");
  (* Directions and contexts are distinct keys. *)
  Alcotest.(check bool) "other direction empty" true
    ((h.Hooks.lookup Hooks.Fwd 5 c ~steps:0).Hooks.finished = None);
  h.Hooks.record_unfinished Hooks.Bwd 5 c ~s:42;
  h.Hooks.record_unfinished Hooks.Bwd 5 c ~s:100;
  Alcotest.(check int) "first unfinished wins" 1 (Jmp_store.n_unfinished st);
  (match (h.Hooks.lookup Hooks.Bwd 5 c ~steps:0).Hooks.unfinished with
  | Some 42 -> ()
  | _ -> Alcotest.fail "expected s=42");
  Jmp_store.clear st;
  Alcotest.(check int) "cleared" 0 (Jmp_store.n_jumps st)

let test_store_thresholds () =
  let st = Jmp_store.create ~tau_f:100 ~tau_u:1000 () in
  let h = Jmp_store.hooks st in
  let c = Ctx.empty in
  h.Hooks.record_finished Hooks.Bwd 1 c ~cost:99 ~targets:[||];
  h.Hooks.record_finished Hooks.Bwd 2 c ~cost:100 ~targets:[||];
  h.Hooks.record_unfinished Hooks.Bwd 3 c ~s:999;
  h.Hooks.record_unfinished Hooks.Bwd 4 c ~s:1000;
  Alcotest.(check int) "finished filtered by tau_f" 1 (Jmp_store.n_finished st);
  Alcotest.(check int) "unfinished filtered by tau_u" 1
    (Jmp_store.n_unfinished st)

let test_store_histogram () =
  let st = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let h = Jmp_store.hooks st in
  h.Hooks.record_finished Hooks.Bwd 1 Ctx.empty ~cost:1 ~targets:[||];
  h.Hooks.record_finished Hooks.Bwd 2 Ctx.empty ~cost:7 ~targets:[||];
  h.Hooks.record_finished Hooks.Bwd 3 Ctx.empty ~cost:8 ~targets:[||];
  h.Hooks.record_unfinished Hooks.Bwd 4 Ctx.empty ~s:1_000_000;
  let fin, unf = Jmp_store.histogram st ~buckets:5 in
  Alcotest.(check (array int)) "finished buckets" [| 1; 0; 1; 1; 0 |] fin;
  (* 1e6 overflows into the last bucket. *)
  Alcotest.(check (array int)) "unfinished buckets" [| 0; 0; 0; 0; 1 |] unf

(* --------------------- solver with a jmp store --------------------- *)

(* A graph where two queries traverse the same heap-access path: both x1
   and x2 copy from m = p.f, with a store through an alias of p, so the
   ReachableNodes record at (m, []) is shared between the queries. *)
let shared_graph () =
  let b = B.create () in
  let p = B.add_var b "p" in
  let q = B.add_var b "q" in
  let a = B.add_var b "a" in
  let m = B.add_var b "m" in
  let x1 = B.add_var b "x1" in
  let x2 = B.add_var b "x2" in
  let op = B.add_obj b "op" in
  let oa = B.add_obj b "oa" in
  B.new_edge b ~dst:p op;
  B.assign b ~dst:q ~src:p;
  B.new_edge b ~dst:a oa;
  B.store b ~base:q 0 ~src:a;
  B.load b ~dst:m ~base:p 0;
  B.assign b ~dst:x1 ~src:m;
  B.assign b ~dst:x2 ~src:m;
  (B.freeze b, (x1, x2, oa))

let test_shortcut_taken () =
  let pag, (x1, x2, oa) = shared_graph () in
  let store = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let stats = Parcfl.Stats.create () in
  let s =
    Solver.make_session ~hooks:(Jmp_store.hooks store) ~stats
      ~config:Config.default ~ctx_store:(Ctx.create_store ()) pag
  in
  let o1 = Solver.points_to s x1 in
  Alcotest.(check (list int)) "x1 -> {oa}" [ oa ] (objs o1);
  Alcotest.(check bool) "jmp recorded" true (Jmp_store.n_finished store > 0);
  let before = (Parcfl.Stats.snapshot stats).Parcfl.Stats.s_jmp_taken in
  let o2 = Solver.points_to s x2 in
  Alcotest.(check (list int)) "x2 -> {oa} via shortcut" [ oa ] (objs o2);
  let after = (Parcfl.Stats.snapshot stats).Parcfl.Stats.s_jmp_taken in
  Alcotest.(check bool) "shortcut taken" true (after > before);
  Alcotest.(check bool) "shortcut cheaper" true
    (o2.Query.steps_walked < o1.Query.steps_walked)

let test_budget_charged_on_shortcut () =
  let pag, (x1, x2, _) = shared_graph () in
  let store = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let s =
    Solver.make_session ~hooks:(Jmp_store.hooks store)
      ~config:Config.default ~ctx_store:(Ctx.create_store ()) pag
  in
  let o1 = Solver.points_to s x1 in
  let o2 = Solver.points_to s x2 in
  (* The budget charge (steps_used) of the shortcut run must equal the
     original run's: replay is step-exact. *)
  Alcotest.(check int) "step accounting identical" o1.Query.steps_used
    o2.Query.steps_used

let test_early_termination () =
  (* First query aborts on a long chain behind a load; its Unfinished jmp
     must early-terminate an equally poor second query. *)
  let b = B.create () in
  let n = 30 in
  let chain = Array.init n (fun i -> B.add_var b (Printf.sprintf "c%d" i)) in
  let o = B.add_obj b "o" in
  B.new_edge b ~dst:chain.(0) o;
  for i = 1 to n - 1 do
    B.assign b ~dst:chain.(i) ~src:chain.(i - 1)
  done;
  let a = B.add_var b "a" in
  let oa = B.add_obj b "oa" in
  B.new_edge b ~dst:a oa;
  B.store b ~base:chain.(n - 1) 0 ~src:a;
  (* Both queries funnel through the same load variable m, so the
     Unfinished jmp recorded at (m, []) by the first query is visible to
     the second. *)
  let m = B.add_var b "m" in
  B.load b ~dst:m ~base:chain.(n - 1) 0;
  let x1 = B.add_var b "x1" in
  let x2 = B.add_var b "x2" in
  B.assign b ~dst:x1 ~src:m;
  B.assign b ~dst:x2 ~src:m;
  let pag = B.freeze b in
  let store = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let stats = Parcfl.Stats.create () in
  let s =
    Solver.make_session ~hooks:(Jmp_store.hooks store) ~stats
      ~config:(Config.with_budget 10 Config.default)
      ~ctx_store:(Ctx.create_store ()) pag
  in
  let o1 = Solver.points_to s x1 in
  Alcotest.(check bool) "first query aborts" false (Query.completed o1);
  Alcotest.(check bool) "unfinished jmp recorded" true
    (Jmp_store.n_unfinished store > 0);
  let o2 = Solver.points_to s x2 in
  Alcotest.(check bool) "second query aborts" false (Query.completed o2);
  Alcotest.(check bool) "second query terminated early" true
    o2.Query.early_terminated;
  Alcotest.(check bool) "early termination saves steps" true
    (o2.Query.steps_walked < o1.Query.steps_walked);
  Alcotest.(check int) "stat counted" 1
    (Parcfl.Stats.snapshot stats).Parcfl.Stats.s_early_terminations

let test_no_et_with_enough_budget () =
  (* The same unfinished record must NOT abort a query that still has
     plenty of budget. *)
  let b = B.create () in
  let p = B.add_var b "p" in
  let a = B.add_var b "a" in
  let x = B.add_var b "x" in
  let op = B.add_obj b "op" in
  let oa = B.add_obj b "oa" in
  B.new_edge b ~dst:p op;
  B.new_edge b ~dst:a oa;
  B.store b ~base:p 0 ~src:a;
  B.load b ~dst:x ~base:p 0;
  let pag = B.freeze b in
  let store = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  (* Manually plant an unfinished marker with a small threshold. *)
  (Jmp_store.hooks store).Hooks.record_unfinished Hooks.Bwd x Ctx.empty ~s:3;
  let s =
    Solver.make_session ~hooks:(Jmp_store.hooks store)
      ~config:(Config.with_budget 10_000 Config.default)
      ~ctx_store:(Ctx.create_store ()) pag
  in
  let o = Solver.points_to s x in
  Alcotest.(check bool) "completes despite marker" true (Query.completed o);
  Alcotest.(check (list int)) "right answer" [ oa ] (objs o)

(* Precision relationship on generated programs: for queries that complete
   both with and without sharing, the unshared result is a subset of the
   shared one (replayed shortcuts are exact; locally broken cycles may
   under-approximate — see solver.mli). In practice they are equal. *)
let test_sharing_precision () =
  let program = Parcfl.Genprog.generate Parcfl.Profile.tiny in
  let cg = Parcfl.Callgraph.build program in
  let l = Parcfl.Lower.lower program cg in
  let pag = l.Parcfl.Lower.pag in
  let queries = Pag.app_locals pag in
  let config = Config.with_budget 2_000 Config.default in
  let run hooks =
    let s =
      Solver.make_session ?hooks ~config ~ctx_store:(Ctx.create_store ()) pag
    in
    Array.map (fun v -> Solver.points_to s v) queries
  in
  let base = run None in
  let store = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let shared = run (Some (Jmp_store.hooks store)) in
  Array.iteri
    (fun i b ->
      let sh = shared.(i) in
      match (b.Query.result, sh.Query.result) with
      | Query.Points_to _, Query.Points_to _ ->
          let ob = objs b and os = objs sh in
          if not (List.for_all (fun o -> List.mem o os) ob) then
            Alcotest.failf "query %d lost precision under sharing" i
      | _ -> ())
    base

(* Concurrent readers must never observe a torn record: before the
   find_map fix, lookup read the record's mutable fin/unf fields after
   releasing the shard lock, racing the in-place update in record_*. Two
   writer domains race first-wins inserts on the same keys while two
   reader domains check every observed value is one a writer actually
   wrote. *)
let test_store_multicore_stress () =
  let st = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let h = Jmp_store.hooks st in
  let c = Ctx.empty in
  let n_keys = 64 and rounds = 400 in
  let bad = Atomic.make 0 in
  let writer seed () =
    for r = 0 to rounds - 1 do
      for v = 0 to n_keys - 1 do
        h.Hooks.record_finished Hooks.Bwd v c
          ~cost:(10 + ((seed + r) mod 8))
          ~targets:[| (v, c) |];
        h.Hooks.record_unfinished Hooks.Bwd v c ~s:(100 + ((seed + r) mod 8))
      done
    done
  in
  let reader () =
    for _ = 0 to rounds - 1 do
      for v = 0 to n_keys - 1 do
        let jmp = h.Hooks.lookup Hooks.Bwd v c ~steps:0 in
        (match jmp.Hooks.finished with
        | Some { Hooks.cost; targets } ->
            if
              cost < 10 || cost >= 18
              || Array.length targets <> 1
              || fst targets.(0) <> v
            then Atomic.incr bad
        | None -> ());
        match jmp.Hooks.unfinished with
        | Some s -> if s < 100 || s >= 108 then Atomic.incr bad
        | None -> ()
      done
    done
  in
  let domains =
    List.map Domain.spawn [ writer 0; writer 3; reader; reader ]
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get bad);
  (* First-wins: exactly one record per key survived the write race. *)
  Alcotest.(check int) "one finished per key" n_keys (Jmp_store.n_finished st);
  Alcotest.(check int) "one unfinished per key" n_keys
    (Jmp_store.n_unfinished st)

(* ---------------------- snapshot export / import ------------------- *)

let test_snapshot_round_trip () =
  let src = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let src_ctxs = Ctx.create_store () in
  let h = Jmp_store.hooks src in
  let c0 = Ctx.empty in
  let c1 = Ctx.of_list src_ctxs [ 3; 7 ] in
  let c2 = Ctx.of_list src_ctxs [ 9 ] in
  h.Hooks.record_finished Hooks.Bwd 5 c0 ~cost:10
    ~targets:[| (1, c1); (2, c0) |];
  h.Hooks.record_finished Hooks.Fwd 6 c1 ~cost:42 ~targets:[| (3, c2) |];
  h.Hooks.record_finished Hooks.Bwd 7 c2 ~cost:99 ~targets:[||];
  (* Unfinished records must NOT travel: they are progress markers. *)
  h.Hooks.record_unfinished Hooks.Bwd 5 c0 ~s:1_000;
  let text = Jmp_store.export_finished src ~generation:4 ~ctx_store:src_ctxs in
  let dst = Jmp_store.create ~tau_f:1_000_000 ~tau_u:1 () in
  let dst_ctxs = Ctx.create_store () in
  (* Skew the destination's interning order so equal snapshot contexts only
     round-trip if they really are re-interned structurally. *)
  ignore (Ctx.of_list dst_ctxs [ 100; 200; 300 ]);
  (match Jmp_store.import_finished dst ~generation:4 ~ctx_store:dst_ctxs text with
  | Ok n -> Alcotest.(check int) "three records imported" 3 n
  | Error e -> Alcotest.failf "import failed: %s" e);
  Alcotest.(check int) "finished survived" 3 (Jmp_store.n_finished dst);
  Alcotest.(check int) "unfinished left behind" 0 (Jmp_store.n_unfinished dst);
  let dh = Jmp_store.hooks dst in
  let d0 = Ctx.empty in
  let d1 = Ctx.of_list dst_ctxs [ 3; 7 ] in
  let d2 = Ctx.of_list dst_ctxs [ 9 ] in
  (match (dh.Hooks.lookup Hooks.Bwd 5 d0 ~steps:0).Hooks.finished with
  | Some { Hooks.cost = 10; targets } ->
      Alcotest.(check int) "two targets" 2 (Array.length targets);
      let tv, tc = targets.(0) in
      Alcotest.(check int) "target var" 1 tv;
      Alcotest.(check (list int)) "target ctx re-interned" [ 3; 7 ]
        (Ctx.to_list dst_ctxs tc)
  | _ -> Alcotest.fail "Bwd record lost");
  (match (dh.Hooks.lookup Hooks.Fwd 6 d1 ~steps:0).Hooks.finished with
  | Some { Hooks.cost = 42; _ } -> ()
  | _ -> Alcotest.fail "Fwd record lost");
  (match (dh.Hooks.lookup Hooks.Bwd 7 d2 ~steps:0).Hooks.finished with
  | Some { Hooks.cost = 99; targets } ->
      Alcotest.(check int) "empty targets" 0 (Array.length targets)
  | _ -> Alcotest.fail "empty-target record lost");
  (* Re-import is idempotent: existing records win. *)
  match Jmp_store.import_finished dst ~generation:4 ~ctx_store:dst_ctxs text with
  | Ok n -> Alcotest.(check int) "re-import adds nothing" 0 n
  | Error e -> Alcotest.failf "re-import failed: %s" e

let test_snapshot_wrong_generation_rejected () =
  let src = Jmp_store.create ~tau_f:1 ~tau_u:1 () in
  let ctxs = Ctx.create_store () in
  (Jmp_store.hooks src).Hooks.record_finished Hooks.Bwd 1 Ctx.empty ~cost:5
    ~targets:[||];
  let text = Jmp_store.export_finished src ~generation:2 ~ctx_store:ctxs in
  let dst = Jmp_store.create () in
  (match Jmp_store.import_finished dst ~generation:3 ~ctx_store:ctxs text with
  | Error e ->
      Alcotest.(check bool) "error names generations" true
        (let contains s sub =
           let n = String.length sub and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         contains e "generation")
  | Ok _ -> Alcotest.fail "stale-generation snapshot must be rejected");
  Alcotest.(check int) "store untouched" 0 (Jmp_store.n_finished dst);
  (* Garbage fails loudly too. *)
  match Jmp_store.import_finished dst ~generation:2 ~ctx_store:ctxs "pag 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-snapshot text must be rejected"

let suite =
  ( "sharing",
    [
      Alcotest.test_case "store basics" `Quick test_store_basics;
      Alcotest.test_case "store thresholds" `Quick test_store_thresholds;
      Alcotest.test_case "store histogram" `Quick test_store_histogram;
      Alcotest.test_case "shortcut taken" `Quick test_shortcut_taken;
      Alcotest.test_case "step-exact replay" `Quick
        test_budget_charged_on_shortcut;
      Alcotest.test_case "early termination" `Quick test_early_termination;
      Alcotest.test_case "no ET with enough budget" `Quick
        test_no_et_with_enough_budget;
      Alcotest.test_case "sharing precision" `Quick test_sharing_precision;
      Alcotest.test_case "store multicore stress" `Quick
        test_store_multicore_stress;
      Alcotest.test_case "snapshot round trip" `Quick test_snapshot_round_trip;
      Alcotest.test_case "snapshot wrong generation rejected" `Quick
        test_snapshot_wrong_generation_rejected;
    ] )
