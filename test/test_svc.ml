(* The persistent analysis service (lib/svc): wire protocol, result cache,
   admission control, micro-batching policy, and the service state machine
   driven deterministically through submit/pump/drain with an explicit
   clock — no server process, no sleeping. *)

module P = Parcfl
module Proto = P.Svc_protocol

(* ----------------------------- protocol ---------------------------- *)

let test_request_round_trip () =
  let requests =
    [
      Proto.Query { id = 1; var = "#5"; budget = None; deadline_ms = None; trace = None };
      Proto.Query
        { id = 2; var = "Main.x"; budget = Some 100; deadline_ms = Some 5.5; trace = None };
      (* A router-forwarded query: rewritten id, original id in trace. *)
      Proto.Query
        { id = 11; var = "#5"; budget = Some 9; deadline_ms = None; trace = Some 2 };
      Proto.Stats 3;
      Proto.Metrics 4;
      Proto.Slowlog { id = 5; limit = None };
      Proto.Slowlog { id = 6; limit = Some 10 };
      Proto.Health 8;
      Proto.Explain { id = 12; var = "#5"; obj = "#2" };
      Proto.Explain { id = 13; var = "Main.x"; obj = "Main.Obj/3" };
      Proto.Drain 9;
      Proto.Snapshot 10;
      Proto.Ping 7;
      Proto.Quit;
    ]
  in
  List.iter
    (fun r ->
      match Proto.parse_request (Proto.request_to_string r) with
      | Ok r' when r = r' -> ()
      | Ok _ -> Alcotest.failf "round trip changed %s" (Proto.request_to_string r)
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    requests

let test_request_errors () =
  List.iter
    (fun line ->
      match Proto.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" line)
    [
      ""; "query"; "query x"; "bogus 1"; "ping notanint";
      "query 1 v budget=x"; "query 1 v trace=x"; "metrics"; "metrics x";
      "slowlog";
      "slowlog 1 -2"; "slowlog 1 x"; "health"; "health x";
      "drain"; "drain x"; "snapshot"; "snapshot x";
      "explain"; "explain 1"; "explain 1 v"; "explain x v o";
    ]

let breakdown =
  {
    P.Svc_span.bd_queue_wait_us = 100.0;
    bd_batch_wait_us = 25.0;
    bd_solve_us = 120.0;
    bd_respond_us = 5.0;
  }

let test_response_round_trip () =
  let responses =
    [
      Proto.Answer
        {
          id = 1;
          var = "v";
          objects = [ "a"; "b" ];
          cached = true;
          steps = 17;
          latency_us = 250.0;
          breakdown;
        };
      Proto.Timeout
        {
          id = 2;
          reason = `Budget;
          cached = false;
          latency_us = 250.0;
          breakdown;
        };
      Proto.Timeout
        {
          id = 3;
          reason = `Deadline;
          cached = false;
          latency_us = 100.0;
          breakdown = P.Svc_span.zero;
        };
      Proto.Rejected { id = 4; reason = "queue_full" };
      Proto.Error { id = Some 5; reason = "no such variable" };
      Proto.Error { id = None; reason = "parse error" };
      Proto.Pong 6;
      Proto.Stats_reply
        { id = 7; stats = P.Json.Obj [ ("admitted", P.Json.Int 1) ] };
      Proto.Metrics_reply
        { id = 8; body = "# HELP a b\n# TYPE a counter\na 1\n" };
      Proto.Slowlog_reply
        {
          id = 9;
          entries =
            P.Json.List [ P.Json.Obj [ ("id", P.Json.Int 1) ] ];
        };
      Proto.Explain_reply
        {
          id = 14;
          var = "v";
          obj = "o";
          found = true;
          depth = 3;
          latency_us = 42.0;
          chain =
            P.Json.List
              [
                P.Json.Obj
                  [
                    ("kind", P.Json.String "assign");
                    ("edge", P.Json.Int 7);
                    ("dst", P.Json.String "v");
                    ("src", P.Json.String "w");
                    ("ctx", P.Json.List []);
                  ];
              ];
        };
      Proto.Explain_reply
        {
          id = 15;
          var = "v";
          obj = "o";
          found = false;
          depth = 0;
          latency_us = 1.0;
          chain = P.Json.List [];
        };
      Proto.Health_reply { id = 10; healthy = true; reasons = [] };
      Proto.Health_reply
        {
          id = 11;
          healthy = false;
          reasons = [ "worker 0 stalled"; "queue starvation" ];
        };
      Proto.Drained { id = 12; completed = 3 };
      Proto.Snapshot_reply
        {
          id = 13;
          generation = 2;
          records = 1;
          body = "jmpsnap 1 gen=2\nfin 1 4 - 7\n";
        };
    ]
  in
  List.iter
    (fun r ->
      match Proto.response_of_string (Proto.response_to_string r) with
      | Ok r' when r = r' -> ()
      | Ok _ ->
          Alcotest.failf "round trip changed %s" (Proto.response_to_string r)
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    responses

(* ------------------------------ cache ------------------------------ *)

let tiny = lazy (Option.get (P.Suite.build_by_name "tiny"))

let solve_outcome v =
  let b = Lazy.force tiny in
  let session =
    P.Solver.make_session ~config:P.Config.default
      ~ctx_store:(P.Ctx.create_store ()) b.P.Suite.pag
  in
  P.Solver.points_to session v

let test_cache_basic () =
  let b = Lazy.force tiny in
  let outcome = solve_outcome b.P.Suite.queries.(0) in
  let c = P.Svc_cache.create ~capacity:10 () in
  let key g v = { P.Svc_cache.ck_var = v; ck_budget = 100; ck_generation = g } in
  Alcotest.(check bool) "miss" true (P.Svc_cache.find c (key 0 0) = None);
  P.Svc_cache.put c (key 0 0) outcome;
  Alcotest.(check bool) "hit" true (P.Svc_cache.find c (key 0 0) <> None);
  Alcotest.(check int) "size" 1 (P.Svc_cache.size c);
  (* A new generation is a different key: loading a new PAG invalidates
     without a sweep. *)
  Alcotest.(check bool) "new generation misses" true
    (P.Svc_cache.find c (key 1 0) = None);
  (* A different budget is a different key too. *)
  Alcotest.(check bool) "other budget misses" true
    (P.Svc_cache.find c
       { P.Svc_cache.ck_var = 0; ck_budget = 99; ck_generation = 0 }
    = None)

let test_cache_eviction () =
  let b = Lazy.force tiny in
  let outcome = solve_outcome b.P.Suite.queries.(0) in
  let c = P.Svc_cache.create ~capacity:10 () in
  let key v = { P.Svc_cache.ck_var = v; ck_budget = 1; ck_generation = 0 } in
  for v = 0 to 9 do
    P.Svc_cache.put c (key v) outcome
  done;
  Alcotest.(check int) "at capacity" 10 (P.Svc_cache.size c);
  (* Refresh v=0 so the sweep prefers older entries. *)
  ignore (P.Svc_cache.find c (key 0));
  P.Svc_cache.put c (key 10) outcome;
  Alcotest.(check bool) "evicted" true (P.Svc_cache.evictions c > 0);
  Alcotest.(check bool) "bounded" true (P.Svc_cache.size c <= 10);
  Alcotest.(check bool) "recently used survives" true
    (P.Svc_cache.find c (key 0) <> None);
  Alcotest.(check bool) "newest survives" true
    (P.Svc_cache.find c (key 10) <> None)

let test_cache_reput_replaces () =
  (* Regression: put on a resident key used to keep the stale entry and
     only refresh its recency tick. A re-put must make the new outcome
     observable — pre-seeding relies on upgrading a cached Out_of_budget
     to a real answer under the same key. *)
  let b = Lazy.force tiny in
  let real = solve_outcome b.P.Suite.queries.(0) in
  let starved =
    { real with P.Query.result = P.Query.Out_of_budget; early_terminated = true }
  in
  let c = P.Svc_cache.create ~capacity:10 () in
  let k = { P.Svc_cache.ck_var = 0; ck_budget = 7; ck_generation = 0 } in
  P.Svc_cache.put c k starved;
  (match P.Svc_cache.find c k with
  | Some o ->
      Alcotest.(check bool) "first put visible" true
        (o.P.Query.result = P.Query.Out_of_budget)
  | None -> Alcotest.fail "first put missed");
  P.Svc_cache.put c k real;
  (match P.Svc_cache.find c k with
  | Some o ->
      Alcotest.(check bool) "re-put replaced the outcome" true
        (o.P.Query.result = real.P.Query.result)
  | None -> Alcotest.fail "re-put missed");
  Alcotest.(check int) "re-put is not an insert" 1 (P.Svc_cache.size c)

let test_cache_concurrent_inserts () =
  (* Eviction sweeps must be mutually excluded: without the try-lock, two
     inserters that both observe size > cap each run the full sweep and
     jointly evict far below the 90% watermark. Hammer the cache from
     several domains and check the size invariants hold afterwards. *)
  let b = Lazy.force tiny in
  let outcome = solve_outcome b.P.Suite.queries.(0) in
  let cap = 64 in
  let c = P.Svc_cache.create ~capacity:cap () in
  let n_domains = 4 and per_domain = 400 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      let k =
        { P.Svc_cache.ck_var = (d * per_domain) + i;
          ck_budget = 1;
          ck_generation = 0 }
      in
      P.Svc_cache.put c k outcome
    done
  in
  let domains =
    List.init (n_domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  worker 0 ();
  List.iter Domain.join domains;
  let target = max 1 (cap - max 1 (cap / 10)) in
  Alcotest.(check bool) "evictions happened" true (P.Svc_cache.evictions c > 0);
  Alcotest.(check bool) "never ends far above capacity" true
    (P.Svc_cache.size c <= cap + n_domains);
  Alcotest.(check bool) "never over-evicts below the watermark" true
    (P.Svc_cache.size c >= target)

(* ---------------------------- admission ---------------------------- *)

let test_admission () =
  let q = P.Svc_admission.create ~capacity:2 in
  Alcotest.(check bool) "add 1" true (P.Svc_admission.try_add q 1);
  Alcotest.(check bool) "add 2" true (P.Svc_admission.try_add q 2);
  Alcotest.(check bool) "full" false (P.Svc_admission.try_add q 3);
  Alcotest.(check int) "depth" 2 (P.Svc_admission.depth q);
  Alcotest.(check (option int)) "peek oldest" (Some 1) (P.Svc_admission.peek q);
  Alcotest.(check (list int)) "take fifo" [ 1 ] (P.Svc_admission.take q ~max:1);
  Alcotest.(check bool) "space again" true (P.Svc_admission.try_add q 3);
  Alcotest.(check (list int)) "drain fifo" [ 2; 3 ] (P.Svc_admission.drain q);
  Alcotest.(check int) "empty" 0 (P.Svc_admission.depth q)

(* ----------------------------- batcher ----------------------------- *)

let test_batcher () =
  let b = P.Svc_batcher.create ~max_batch:4 ~max_wait:1.0 () in
  Alcotest.(check bool) "empty never due" false
    (P.Svc_batcher.due b ~now:10.0 ~depth:0 ~oldest_arrival:None);
  Alcotest.(check bool) "full is due" true
    (P.Svc_batcher.due b ~now:0.0 ~depth:4 ~oldest_arrival:(Some 0.0));
  Alcotest.(check bool) "window open" false
    (P.Svc_batcher.due b ~now:0.5 ~depth:1 ~oldest_arrival:(Some 0.0));
  Alcotest.(check bool) "window expired" true
    (P.Svc_batcher.due b ~now:1.5 ~depth:1 ~oldest_arrival:(Some 0.0));
  Alcotest.(check bool) "hint when empty" true
    (P.Svc_batcher.wait_hint b ~now:0.0 ~oldest_arrival:None = None);
  (match P.Svc_batcher.wait_hint b ~now:0.25 ~oldest_arrival:(Some 0.0) with
  | Some s -> Alcotest.(check (float 1e-9)) "hint" 0.75 s
  | None -> Alcotest.fail "expected a wait hint");
  match P.Svc_batcher.wait_hint b ~now:5.0 ~oldest_arrival:(Some 0.0) with
  | Some s -> Alcotest.(check (float 1e-9)) "overdue hint" 0.0 s
  | None -> Alcotest.fail "expected a zero hint"

(* ----------------------------- service ----------------------------- *)

let service_config =
  {
    P.Service.default_config with
    P.Service.threads = 1;
    max_batch = 8;
    max_wait = 0.0;
  }

let make_service ?(config = service_config) () =
  let b = Lazy.force tiny in
  (b, P.Service.create ~config ~type_level:b.P.Suite.type_level b.P.Suite.pag)

let collector () =
  let responses : (int, Proto.response) Hashtbl.t = Hashtbl.create 8 in
  let respond r =
    match Proto.response_id r with
    | Some id -> Hashtbl.replace responses id r
    | None -> Alcotest.fail "response without an id"
  in
  (responses, respond)

let query ?budget ?deadline_ms id v =
  Proto.Query { id; var = Printf.sprintf "#%d" v; budget; deadline_ms; trace = None }

let test_cached_equals_cold () =
  let b, svc = make_service () in
  let v = b.P.Suite.queries.(0) in
  let responses, respond = collector () in
  P.Service.submit svc ~now:0.0 ~respond (query 1 v);
  ignore (P.Service.pump ~force:true svc ~now:0.0);
  P.Service.submit svc ~now:1.0 ~respond (query 2 v);
  let expected =
    P.Query.objects (solve_outcome v).P.Query.result
    |> List.map (P.Pag.obj_name b.P.Suite.pag)
    |> List.sort_uniq compare
  in
  (match Hashtbl.find_opt responses 1 with
  | Some (Proto.Answer { cached; objects; _ }) ->
      Alcotest.(check bool) "first is cold" false cached;
      Alcotest.(check (list string)) "cold = direct solve" expected objects
  | r ->
      Alcotest.failf "unexpected cold response %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none"));
  match Hashtbl.find_opt responses 2 with
  | Some (Proto.Answer { cached; objects; _ }) ->
      Alcotest.(check bool) "second is cached" true cached;
      Alcotest.(check (list string)) "cached = cold" expected objects
  | r ->
      Alcotest.failf "unexpected cached response %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none")

let test_queue_full_rejection () =
  let _, svc =
    make_service
      ~config:{ service_config with P.Service.queue_capacity = 1 }
      ()
  in
  let b = Lazy.force tiny in
  let v0 = b.P.Suite.queries.(0) and v1 = b.P.Suite.queries.(1) in
  let responses, respond = collector () in
  P.Service.submit svc ~now:0.0 ~respond (query 1 v0);
  P.Service.submit svc ~now:0.0 ~respond (query 2 v1);
  (match Hashtbl.find_opt responses 2 with
  | Some (Proto.Rejected _) -> ()
  | r ->
      Alcotest.failf "expected rejection, got %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none"));
  (* The admitted request is untouched by the rejection. *)
  ignore (P.Service.pump ~force:true svc ~now:0.0);
  match Hashtbl.find_opt responses 1 with
  | Some (Proto.Answer _) -> ()
  | r ->
      Alcotest.failf "expected an answer, got %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none")

let test_drain_completes_inflight () =
  let b, svc = make_service () in
  let responses, respond = collector () in
  let n = min 5 (Array.length b.P.Suite.queries) in
  for i = 0 to n - 1 do
    P.Service.submit svc ~now:0.0 ~respond (query i b.P.Suite.queries.(i))
  done;
  Alcotest.(check int) "queued" n (P.Service.queue_depth svc);
  P.Service.drain svc ~now:0.0;
  Alcotest.(check int) "drained" 0 (P.Service.queue_depth svc);
  for i = 0 to n - 1 do
    match Hashtbl.find_opt responses i with
    | Some (Proto.Answer _) | Some (Proto.Timeout _) -> ()
    | r ->
        Alcotest.failf "request %d: expected a real response, got %s" i
          (match r with Some r -> Proto.response_to_string r | None -> "none")
  done

(* Satellite: the drain verb finishes in-flight work, reports how much it
   finished, and flips the service into a rejecting state — the hand-off a
   rolling restart watches. *)
let test_drain_verb () =
  let b, svc = make_service () in
  let responses, respond = collector () in
  let n = min 3 (Array.length b.P.Suite.queries) in
  for i = 0 to n - 1 do
    P.Service.submit svc ~now:0.0 ~respond (query i b.P.Suite.queries.(i))
  done;
  Alcotest.(check bool) "not draining yet" false (P.Service.draining svc);
  P.Service.submit svc ~now:0.0 ~respond (Proto.Drain 100);
  (* Every queued request got a real answer before the drained reply. *)
  for i = 0 to n - 1 do
    match Hashtbl.find_opt responses i with
    | Some (Proto.Answer _) | Some (Proto.Timeout _) -> ()
    | r ->
        Alcotest.failf "request %d: expected a real response, got %s" i
          (match r with Some r -> Proto.response_to_string r | None -> "none")
  done;
  (match Hashtbl.find_opt responses 100 with
  | Some (Proto.Drained { completed; _ }) ->
      Alcotest.(check int) "reports what it finished" n completed
  | r ->
      Alcotest.failf "expected a drained reply, got %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none"));
  Alcotest.(check int) "queue empty" 0 (P.Service.queue_depth svc);
  Alcotest.(check bool) "draining" true (P.Service.draining svc);
  (* New queries bounce with the draining reason; observability verbs keep
     answering so the operator can watch the hand-off. *)
  P.Service.submit svc ~now:1.0 ~respond (query 200 b.P.Suite.queries.(0));
  (match Hashtbl.find_opt responses 200 with
  | Some (Proto.Rejected { reason; _ }) ->
      Alcotest.(check string) "reason" "draining" reason
  | r ->
      Alcotest.failf "expected a draining rejection, got %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none"));
  P.Service.submit svc ~now:1.0 ~respond (Proto.Health 201);
  match Hashtbl.find_opt responses 201 with
  | Some (Proto.Health_reply _) -> ()
  | r ->
      Alcotest.failf "expected health to keep answering, got %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none")

let test_deadline_expired_is_timeout () =
  let b, svc = make_service () in
  let responses, respond = collector () in
  P.Service.submit svc ~now:0.0 ~respond
    (query ~deadline_ms:1.0 1 b.P.Suite.queries.(0));
  (* The batch forms long after the deadline: the service must report
     Timeout `Deadline without fabricating a points-to answer. *)
  ignore (P.Service.pump ~force:true svc ~now:10.0);
  match Hashtbl.find_opt responses 1 with
  | Some (Proto.Timeout { reason = `Deadline; latency_us; breakdown; _ }) ->
      (* The whole wait happened in the queue; nothing was solved. *)
      Alcotest.(check (float 1e-6)) "never solved" 0.0
        breakdown.P.Svc_span.bd_solve_us;
      Alcotest.(check (float 1e-3)) "breakdown sums to latency" latency_us
        (P.Svc_span.total_us breakdown);
      Alcotest.(check (float 1e-3)) "latency is the queue wait" 10.0e6
        latency_us
  | r ->
      Alcotest.failf "expected deadline timeout, got %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none")

let test_budget_exhausted_is_timeout () =
  let b, svc = make_service () in
  (* Pick a query that genuinely needs more than one step. *)
  let needs_work =
    Array.to_list b.P.Suite.queries
    |> List.find_opt (fun v -> (solve_outcome v).P.Query.steps_walked > 1)
  in
  match needs_work with
  | None -> () (* degenerate suite; nothing to assert *)
  | Some v ->
      let responses, respond = collector () in
      P.Service.submit svc ~now:0.0 ~respond (query ~budget:1 1 v);
      ignore (P.Service.pump ~force:true svc ~now:0.0);
      (match Hashtbl.find_opt responses 1 with
      | Some (Proto.Timeout { reason = `Budget; _ }) -> ()
      | r ->
          Alcotest.failf "expected budget timeout, got %s"
            (match r with
            | Some r -> Proto.response_to_string r
            | None -> "none"))

let test_stats_count_hits () =
  let b, svc = make_service () in
  let _, respond = collector () in
  let v = b.P.Suite.queries.(0) in
  P.Service.submit svc ~now:0.0 ~respond (query 1 v);
  ignore (P.Service.pump ~force:true svc ~now:0.0);
  P.Service.submit svc ~now:1.0 ~respond (query 2 v);
  P.Service.submit svc ~now:1.0 ~respond (query 3 v);
  let m = P.Service.metrics svc in
  Alcotest.(check bool) "cache hits counted" true
    (P.Svc_metrics.get m P.Svc_metrics.Cache_hit >= 2);
  Alcotest.(check bool) "hit rate positive" true
    (P.Svc_metrics.cache_hit_rate m > 0.0);
  (* The stats request carries the same counters over the wire. *)
  let seen = ref None in
  P.Service.submit svc ~now:1.0
    ~respond:(fun r -> seen := Some r)
    (Proto.Stats 9);
  match !seen with
  | Some (Proto.Stats_reply { stats = P.Json.Obj fields; _ }) ->
      (match List.assoc_opt "cache_hits" fields with
      | Some (P.Json.Int h) ->
          Alcotest.(check bool) "stats payload hits" true (h >= 2)
      | _ -> Alcotest.fail "stats payload missing cache_hits")
  | _ -> Alcotest.fail "expected a stats reply"

let test_resolve () =
  let b, svc = make_service () in
  let v = b.P.Suite.queries.(0) in
  (match P.Service.resolve svc (Printf.sprintf "#%d" v) with
  | Ok v' -> Alcotest.(check int) "by id" v v'
  | Error e -> Alcotest.failf "resolve #id failed: %s" e);
  (match P.Service.resolve svc (P.Pag.var_name b.P.Suite.pag v) with
  | Ok v' -> Alcotest.(check int) "by name" v v'
  | Error e -> Alcotest.failf "resolve name failed: %s" e);
  (match P.Service.resolve svc "#999999999" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range id resolved");
  match P.Service.resolve svc "no_such_variable_xyz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown name resolved"

(* Satellite: Runner surfaces per-query wall-clock start/end stamps. *)
let test_runner_query_stamps () =
  let b = Lazy.force tiny in
  let r =
    P.Runner.run ~type_level:b.P.Suite.type_level
      ~solver_config:P.Config.default ~mode:P.Mode.Seq ~threads:1
      ~queries:b.P.Suite.queries b.P.Suite.pag
  in
  Array.iter
    (fun qs ->
      if qs.P.Report.qs_end_us < qs.P.Report.qs_start_us then
        Alcotest.fail "qs_end_us precedes qs_start_us";
      if qs.P.Report.qs_start_us <= 0.0 then
        Alcotest.fail "qs_start_us is not an absolute timestamp";
      let lat = qs.P.Report.qs_end_us -. qs.P.Report.qs_start_us in
      if abs_float (lat -. qs.P.Report.qs_latency_us) > 1e-6 then
        Alcotest.fail "qs_latency_us disagrees with the stamps")
    r.P.Report.r_queries

(* ------------------------ spans & watchdog ------------------------- *)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Tentpole: an answered query's breakdown accounts for its whole
   latency. Driven with the wall clock so the solve stamps (epoch µs from
   the runner) and the service stamps share a timebase. *)
let test_breakdown_sums_to_latency () =
  let b, svc = make_service () in
  let responses, respond = collector () in
  P.Service.submit svc ~now:(Unix.gettimeofday ()) ~respond
    (query 1 b.P.Suite.queries.(0));
  ignore (P.Service.pump ~force:true svc ~now:(Unix.gettimeofday ()));
  (match Hashtbl.find_opt responses 1 with
  | Some (Proto.Answer { cached; latency_us; breakdown; _ }) ->
      Alcotest.(check bool) "cold" false cached;
      List.iter
        (fun v ->
          Alcotest.(check bool) "stage non-negative" true (v >= 0.0))
        (P.Svc_span.stage_values breakdown);
      let sum = P.Svc_span.total_us breakdown in
      Alcotest.(check bool) "stages sum to latency" true
        (abs_float (sum -. latency_us) <= (0.05 *. latency_us) +. 1.0)
  | r ->
      Alcotest.failf "expected an answer, got %s"
        (match r with Some r -> Proto.response_to_string r | None -> "none"));
  (* The same stages feed the service counters and the stats payload. *)
  let m = P.Service.metrics svc in
  let stage_total =
    List.fold_left
      (fun acc c -> acc + P.Svc_metrics.get m c)
      0
      [
        P.Svc_metrics.Stage_queue_us; P.Svc_metrics.Stage_batch_us;
        P.Svc_metrics.Stage_solve_us; P.Svc_metrics.Stage_respond_us;
      ]
  in
  Alcotest.(check bool) "stage counters accumulated" true (stage_total >= 0);
  match P.Service.metrics_json svc with
  | P.Json.Obj fields ->
      Alcotest.(check bool) "stats has in_flight" true
        (List.assoc_opt "in_flight" fields = Some (P.Json.Int 0));
      Alcotest.(check bool) "stats has stage aggregate" true
        (List.mem_assoc "stage_solve_us" fields)
  | _ -> Alcotest.fail "stats payload is not an object"

let test_watchdog_unit () =
  let module W = P.Svc_watchdog in
  let wd = W.create ~workers:2 ~now:0.0 () in
  (* A quiet service owes no progress, however stale the beats. *)
  let v = W.check wd ~now:100.0 ~oldest_admitted:None in
  Alcotest.(check bool) "quiet is healthy" true v.W.wd_healthy;
  (* Demand turns the same stale beats into a stall — one reason per
     worker (default stall threshold 5 s). *)
  let v = W.check wd ~now:100.0 ~oldest_admitted:(Some 99.9) in
  Alcotest.(check bool) "stale under demand" false v.W.wd_healthy;
  Alcotest.(check int) "both workers named" 2 (List.length v.W.wd_reasons);
  (* A joined batch heartbeats everyone back to health. *)
  W.observe_batch wd ~now:100.0;
  let v = W.check wd ~now:100.0 ~oldest_admitted:(Some 99.9) in
  Alcotest.(check bool) "fresh beats are healthy" true v.W.wd_healthy;
  (* Queue starvation fires independently of worker health (default
     starvation threshold 1 s). *)
  let v = W.check wd ~now:102.0 ~oldest_admitted:(Some 100.0) in
  Alcotest.(check bool) "starved queue degrades" false v.W.wd_healthy;
  Alcotest.(check bool) "reason names starvation" true
    (List.exists (fun r -> contains r "starved") v.W.wd_reasons);
  (* Real runner stamps (epoch µs) beat workers at their last solve-end;
     a zero stamp (worker never ran a query) falls back to the batch
     end. *)
  W.observe_batch wd ~now:200.0 ~last_progress_us:[| 199.5e6; 0.0 |];
  Alcotest.(check (float 1e-9)) "stamped worker" 199.5 (W.last_beat wd 0);
  Alcotest.(check (float 1e-9)) "idle worker" 200.0 (W.last_beat wd 1)

let test_health_verb_and_injection () =
  let _, svc = make_service () in
  let health now =
    let seen = ref None in
    P.Service.submit svc ~now
      ~respond:(fun r -> seen := Some r)
      (Proto.Health 1);
    match !seen with
    | Some (Proto.Health_reply { healthy; reasons; _ }) -> (healthy, reasons)
    | Some r ->
        Alcotest.failf "expected a health reply, got %s"
          (Proto.response_to_string r)
    | None -> Alcotest.fail "health got no reply"
  in
  let healthy, reasons = health 0.0 in
  Alcotest.(check bool) "initially ok" true healthy;
  Alcotest.(check (list string)) "no reasons" [] reasons;
  (* An injected stall must flow through the same verdict the operator
     sees, and recovery must be observable the same way. *)
  P.Service.inject_stall svc ~now:10.0 ~worker:0 ~stalled:true;
  let healthy, reasons = health 10.0 in
  Alcotest.(check bool) "injected stall degrades" false healthy;
  Alcotest.(check bool) "reason names worker 0" true
    (List.exists (fun r -> contains r "worker 0") reasons);
  P.Service.inject_stall svc ~now:20.0 ~worker:0 ~stalled:false;
  let healthy, reasons = health 20.0 in
  Alcotest.(check bool) "recovers" true healthy;
  Alcotest.(check (list string)) "reasons clear" [] reasons

let suite =
  ( "svc",
    [
      Alcotest.test_case "protocol request round trip" `Quick
        test_request_round_trip;
      Alcotest.test_case "protocol request errors" `Quick test_request_errors;
      Alcotest.test_case "protocol response round trip" `Quick
        test_response_round_trip;
      Alcotest.test_case "cache basic + generation" `Quick test_cache_basic;
      Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
      Alcotest.test_case "cache re-put replaces outcome" `Quick
        test_cache_reput_replaces;
      Alcotest.test_case "cache concurrent inserts" `Quick
        test_cache_concurrent_inserts;
      Alcotest.test_case "admission backpressure" `Quick test_admission;
      Alcotest.test_case "batcher policy" `Quick test_batcher;
      Alcotest.test_case "cached result equals cold solve" `Quick
        test_cached_equals_cold;
      Alcotest.test_case "queue full rejects" `Quick test_queue_full_rejection;
      Alcotest.test_case "drain completes in-flight" `Quick
        test_drain_completes_inflight;
      Alcotest.test_case "drain verb hand-off" `Quick test_drain_verb;
      Alcotest.test_case "expired deadline times out" `Quick
        test_deadline_expired_is_timeout;
      Alcotest.test_case "exhausted budget times out" `Quick
        test_budget_exhausted_is_timeout;
      Alcotest.test_case "stats count cache hits" `Quick test_stats_count_hits;
      Alcotest.test_case "variable resolution" `Quick test_resolve;
      Alcotest.test_case "runner query stamps" `Quick test_runner_query_stamps;
      Alcotest.test_case "breakdown sums to latency" `Quick
        test_breakdown_sums_to_latency;
      Alcotest.test_case "watchdog stall + starvation" `Quick
        test_watchdog_unit;
      Alcotest.test_case "health verb + stall injection" `Quick
        test_health_verb_and_injection;
    ] )
