(* Telemetry: Prometheus text exposition (lib/telemetry), the collector
   registry, the slow-query flight recorder, the load generator's honest
   percentiles, and the tracer's dropped-event footer. The exposition tests
   diff rendered text because the renderer promises deterministic bytes. *)

module P = Parcfl
module E = P.Expo
module Proto = P.Svc_protocol

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains what needle text =
  if not (contains ~needle text) then
    Alcotest.failf "%s: %S not found in:\n%s" what needle text

(* Drop the one line that tracks wall-clock time, so two scrapes of an
   unchanged service compare equal. *)
let strip_uptime text =
  String.split_on_char '\n' text
  |> List.filter (fun l ->
         not (String.length l >= 26 && String.sub l 0 26 = "parcfl_svc_uptime_seconds "))
  |> String.concat "\n"

(* --------------------------- exposition ---------------------------- *)

let test_sanitize_and_escape () =
  Alcotest.(check string) "dots and dashes" "foo_bar_baz"
    (E.sanitize_name "foo.bar-baz");
  Alcotest.(check string) "leading digit" "_9lives" (E.sanitize_name "9lives");
  Alcotest.(check string) "empty" "_" (E.sanitize_name "");
  Alcotest.(check string) "valid untouched" "ok_name:x9"
    (E.sanitize_name "ok_name:x9");
  Alcotest.(check string) "label escapes" "a\\\\b\\\"c\\nd"
    (E.escape_label_value "a\\b\"c\nd");
  (* HELP text keeps quotes (not in label position) but stays on one line. *)
  Alcotest.(check string) "help escapes" "say \"hi\"\\n"
    (E.escape_help "say \"hi\"\n")

let test_render_deterministic_and_sorted () =
  let families =
    [
      E.gauge ~name:"zz_last" ~help:"z" 1.0;
      E.counter ~name:"aa_first_total" ~help:"a" 2.0;
      E.Counter
        {
          name = "mid_total";
          help = "m";
          samples =
            [
              { E.labels = [ ("shard", "1") ]; value = 1.0 };
              { E.labels = [ ("shard", "0") ]; value = 3.0 };
            ];
        };
    ]
  in
  let text = E.render families in
  let text' = E.render (List.rev families) in
  Alcotest.(check string) "order-insensitive input, identical bytes" text
    text';
  (* Families come out sorted by name, samples sorted by label set. *)
  let idx needle =
    let rec find i =
      if i + String.length needle > String.length text then -1
      else if String.sub text i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let a = idx "aa_first_total 2" in
  let m0 = idx "mid_total{shard=\"0\"} 3" in
  let m1 = idx "mid_total{shard=\"1\"} 1" in
  let z = idx "zz_last 1" in
  List.iter
    (fun (what, i) -> if i < 0 then Alcotest.failf "missing line: %s" what)
    [ ("aa", a); ("mid shard 0", m0); ("mid shard 1", m1); ("zz", z) ];
  Alcotest.(check bool) "families sorted" true (a < m0 && m1 < z);
  Alcotest.(check bool) "samples sorted by labels" true (m0 < m1)

let test_render_nonfinite () =
  let text =
    E.render
      [
        E.gauge ~name:"g_nan" ~help:"h" Float.nan;
        E.gauge ~name:"g_pinf" ~help:"h" Float.infinity;
        E.gauge ~name:"g_ninf" ~help:"h" Float.neg_infinity;
      ]
  in
  check_contains "NaN" "g_nan NaN\n" text;
  check_contains "+Inf" "g_pinf +Inf\n" text;
  check_contains "-Inf" "g_ninf -Inf\n" text

let test_cumulative_buckets () =
  (* log2 bucket i counts [2^i, 2^(i+1)); cumulative le = 2^(i+1). *)
  let buckets = E.cumulative_of_log2 [| 3; 0; 2; 1 |] in
  let les = List.map fst buckets and counts = List.map snd buckets in
  Alcotest.(check (list int)) "cumulative counts" [ 3; 3; 5; 6 ] counts;
  (match les with
  | [ a; b; c; inf ] ->
      Alcotest.(check (float 0.0)) "le0" 2.0 a;
      Alcotest.(check (float 0.0)) "le1" 4.0 b;
      Alcotest.(check (float 0.0)) "le2" 8.0 c;
      Alcotest.(check bool) "last is +Inf" true (inf = Float.infinity)
  | _ -> Alcotest.fail "expected 4 buckets");
  let rec monotone = function
    | (le1, c1) :: ((le2, c2) :: _ as rest) ->
        le1 < le2 && c1 <= c2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing le, non-decreasing count" true
    (monotone buckets);
  Alcotest.(check bool) "empty array is one +Inf bucket of 0" true
    (E.cumulative_of_log2 [||] = [ (Float.infinity, 0) ])

let test_histogram_render () =
  let text =
    E.render
      [
        E.histogram_of_log2 ~sum:12.5 ~name:"lat_us" ~help:"latency"
          [| 2; 1; 0; 4 |];
      ]
  in
  check_contains "type line" "# TYPE lat_us histogram\n" text;
  check_contains "first bucket" "lat_us_bucket{le=\"2\"} 2\n" text;
  check_contains "mid bucket" "lat_us_bucket{le=\"4\"} 3\n" text;
  check_contains "inf bucket" "lat_us_bucket{le=\"+Inf\"} 7\n" text;
  check_contains "sum" "lat_us_sum 12.5\n" text;
  check_contains "count" "lat_us_count 7\n" text

(* ----------------------------- parsing ----------------------------- *)

(* The property the cluster router's federation rests on: the parser
   reads back exactly what the renderer wrote, so render → parse →
   re-render is byte-identical. *)
let check_roundtrip what families =
  let text = E.render families in
  match E.parse_families text with
  | Error e -> Alcotest.failf "%s: parse failed: %s\n%s" what e text
  | Ok parsed ->
      Alcotest.(check string)
        (what ^ ": render/parse/render fixpoint")
        text (E.render parsed)

let test_parse_roundtrip () =
  check_roundtrip "counters"
    [
      E.counter ~name:"plain_total" ~help:"a counter" 42.0;
      E.Counter
        {
          name = "labeled_total";
          help = "labels with every escape: \\ \" and a\nnewline";
          samples =
            [
              { E.labels = [ ("path", "a\\b") ]; value = 1.0 };
              { E.labels = [ ("path", "say \"hi\"") ]; value = 2.0 };
              { E.labels = [ ("path", "two\nlines") ]; value = 3.0 };
              { E.labels = [ ("k", "v"); ("k2", "v2") ]; value = 0.5 };
            ];
        };
    ];
  check_roundtrip "gauges incl. non-finite and non-integer"
    [
      E.gauge ~name:"g_nan" ~help:"h" Float.nan;
      E.gauge ~name:"g_pinf" ~help:"h" Float.infinity;
      E.gauge ~name:"g_ninf" ~help:"h" Float.neg_infinity;
      E.gauge ~name:"g_frac" ~help:"h" 0.034782608695652;
      E.gauge ~labels:[ ("replica", "3") ] ~name:"g_lab" ~help:"h" 7.0;
    ];
  check_roundtrip "histograms"
    [
      E.histogram_of_log2 ~sum:12.5 ~name:"lat_us" ~help:"latency"
        [| 2; 1; 0; 4 |];
      E.histogram_of_log2 ~labels:[ ("stage", "solve") ] ~name:"stage_us"
        ~help:"no sum tracked" [| 1; 1 |];
      E.Histogram
        {
          name = "multi_series";
          help = "two label sets in one family";
          series =
            [
              {
                E.h_labels = [ ("replica", "0") ];
                h_buckets = [ (2.0, 1); (Float.infinity, 4) ];
                h_count = 4;
                h_sum = Some 9.25;
              };
              {
                E.h_labels = [ ("replica", "1") ];
                h_buckets = [ (2.0, 0); (Float.infinity, 2) ];
                h_count = 2;
                h_sum = None;
              };
            ];
        };
    ];
  check_roundtrip "empty exposition" [];
  (* Parsed structure is faithful, not just re-renderable. *)
  let fams =
    [ E.counter ~labels:[ ("a", "x\ny") ] ~name:"c_total" ~help:"h" 3.0 ]
  in
  match E.parse_families (E.render fams) with
  | Ok [ E.Counter { name = "c_total"; help = "h"; samples } ] ->
      Alcotest.(check bool) "label value unescaped" true
        (samples = [ { E.labels = [ ("a", "x\ny") ]; value = 3.0 } ])
  | Ok _ -> Alcotest.fail "unexpected parse shape"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_rejects_malformed () =
  let expect_error what text =
    match E.parse_families text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed input accepted" what
  in
  expect_error "garbage" "not an exposition\n";
  expect_error "sample before any header" "x_total 1\n";
  expect_error "TYPE before HELP" "# TYPE x_total counter\nx_total 1\n";
  expect_error "TYPE name mismatch"
    "# HELP a_total h\n# TYPE b_total counter\n";
  expect_error "unknown kind" "# HELP x h\n# TYPE x summary\nx 1\n";
  expect_error "sample from another family"
    "# HELP a_total h\n# TYPE a_total counter\nb_total 1\n";
  expect_error "missing value" "# HELP x h\n# TYPE x gauge\nx\n";
  expect_error "bad value" "# HELP x h\n# TYPE x gauge\nx pancake\n";
  expect_error "unterminated label value"
    "# HELP x h\n# TYPE x gauge\nx{a=\"b} 1\n";
  expect_error "unknown escape" "# HELP x h\n# TYPE x gauge\nx{a=\"\\t\"} 1\n";
  expect_error "histogram series left open"
    "# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\n";
  expect_error "bucket without le"
    "# HELP h h\n# TYPE h histogram\nh_bucket 1\nh_count 1\n";
  (* Blank lines and foreign comments are legal exposition noise. *)
  match
    E.parse_families
      "\n# a scrape comment\n# HELP x_total h\n# TYPE x_total counter\n\nx_total 1\n"
  with
  | Ok [ E.Counter { samples = [ { E.value = 1.0; _ } ]; _ } ] -> ()
  | Ok _ -> Alcotest.fail "unexpected shape for commented exposition"
  | Error e -> Alcotest.failf "comments/blank lines rejected: %s" e

let test_registry () =
  let r = P.Telemetry.create () in
  P.Telemetry.register r (fun () ->
      [ E.counter ~name:"good_total" ~help:"fine" 1.0 ]);
  (* A faulty collector must not take down the scrape. *)
  P.Telemetry.register r (fun () -> failwith "collector crash");
  P.Telemetry.register r (fun () ->
      [ E.gauge ~name:"also_good" ~help:"fine" 2.0 ]);
  let text = P.Telemetry.render r in
  check_contains "first collector" "good_total 1\n" text;
  check_contains "third collector" "also_good 2\n" text;
  Alcotest.(check int) "two families survive" 2
    (List.length (P.Telemetry.collect r))

(* ----------------------------- slowlog ----------------------------- *)

let entry ?(cached = false) ?(outcome = "ok") ~id ~lat ~at () =
  {
    P.Svc_slowlog.sl_id = id;
    sl_var = Printf.sprintf "v%d" id;
    sl_budget = 100;
    sl_steps = 10;
    sl_latency_us = lat;
    sl_breakdown =
      {
        P.Svc_span.bd_queue_wait_us = lat /. 2.0;
        bd_batch_wait_us = 0.0;
        bd_solve_us = lat /. 2.0;
        bd_respond_us = 0.0;
      };
    sl_outcome = outcome;
    sl_cached = cached;
    sl_trace = None;
    sl_at = at;
  }

let test_slowlog_bound_and_order () =
  let sl = P.Svc_slowlog.create ~capacity:4 in
  (* Offer 10 queries with latencies 10, 20, ..., 100 us. *)
  for i = 1 to 10 do
    P.Svc_slowlog.note sl
      (entry ~id:i ~lat:(float_of_int (i * 10)) ~at:(float_of_int i) ())
  done;
  Alcotest.(check int) "bounded" 4 (P.Svc_slowlog.size sl);
  let worst = P.Svc_slowlog.worst sl in
  Alcotest.(check (list int)) "four slowest, slowest first"
    [ 10; 9; 8; 7 ]
    (List.map (fun e -> e.P.Svc_slowlog.sl_id) worst);
  (* A query faster than every resident is not kept. *)
  P.Svc_slowlog.note sl (entry ~id:11 ~lat:1.0 ~at:11.0 ());
  Alcotest.(check (list int)) "fast newcomer rejected"
    [ 10; 9; 8; 7 ]
    (List.map
       (fun e -> e.P.Svc_slowlog.sl_id)
       (P.Svc_slowlog.worst sl));
  (* A slower one evicts the current fastest resident (id 7). *)
  P.Svc_slowlog.note sl (entry ~id:12 ~lat:75.0 ~at:12.0 ());
  Alcotest.(check (list int)) "slow newcomer evicts fastest"
    [ 10; 9; 8; 12 ]
    (List.map
       (fun e -> e.P.Svc_slowlog.sl_id)
       (P.Svc_slowlog.worst sl));
  Alcotest.(check int) "limit truncates" 2
    (List.length (P.Svc_slowlog.worst ~limit:2 sl));
  (* Latency ties break newest-first. *)
  let sl2 = P.Svc_slowlog.create ~capacity:3 in
  P.Svc_slowlog.note sl2 (entry ~id:1 ~lat:50.0 ~at:1.0 ());
  P.Svc_slowlog.note sl2 (entry ~id:2 ~lat:50.0 ~at:2.0 ());
  Alcotest.(check (list int)) "ties newest first" [ 2; 1 ]
    (List.map
       (fun e -> e.P.Svc_slowlog.sl_id)
       (P.Svc_slowlog.worst sl2));
  (match P.Svc_slowlog.to_json ~limit:1 sl2 with
  | P.Json.List [ P.Json.Obj fields ] ->
      Alcotest.(check bool) "json id" true
        (List.assoc_opt "id" fields = Some (P.Json.Int 2))
  | _ -> Alcotest.fail "expected a one-element JSON list");
  P.Svc_slowlog.clear sl2;
  Alcotest.(check int) "clear" 0 (P.Svc_slowlog.size sl2)

(* --------------------------- percentiles --------------------------- *)

let test_percentile_honesty () =
  let sorted n = Array.init n (fun i -> float_of_int (i + 1)) in
  (match P.Load_gen.percentile [||] 0.5 with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "empty sample set produced %f" v);
  (match P.Load_gen.percentile (sorted 10) 1.5 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "q out of range accepted");
  (match P.Load_gen.percentile (sorted 10) Float.nan with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "NaN quantile accepted");
  (* p99 needs ceil(1/0.01) = 100 samples: 50 is not enough. *)
  (match P.Load_gen.percentile (sorted 50) 0.99 with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "p99 of 50 samples produced %f" v);
  (match P.Load_gen.percentile (sorted 100) 0.99 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "p99 of 100 samples refused: %s" e);
  (match P.Load_gen.percentile (sorted 2) 0.5 with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "p50 of 2 samples refused: %s" e);
  match P.Load_gen.percentile (sorted 3) 1.0 with
  | Ok v -> Alcotest.(check (float 0.0)) "q=1 is the max" 3.0 v
  | Error e -> Alcotest.failf "q=1 refused: %s" e

(* ------------------------- tracer footer --------------------------- *)

let test_tracer_dropped_footer () =
  let t = P.Tracer.create ~capacity:4 ~workers:1 () in
  for i = 0 to 9 do
    P.Tracer.emit t ~worker:0 P.Tracer.Query_start ~var:i;
    P.Tracer.emit t ~worker:0 P.Tracer.Query_end ~var:i
  done;
  Alcotest.(check int) "dropped count" 16 (P.Tracer.n_dropped t);
  match P.Tracer.to_json t with
  | P.Json.Obj fields ->
      Alcotest.(check bool) "footer present" true
        (List.assoc_opt "droppedEvents" fields = Some (P.Json.Int 16))
  | _ -> Alcotest.fail "expected a JSON object"

(* ---------------------- service end to end ------------------------- *)

let tiny = lazy (Option.get (P.Suite.build_by_name "tiny"))

let make_service () =
  let b = Lazy.force tiny in
  let config =
    {
      P.Service.default_config with
      P.Service.threads = 1;
      max_batch = 8;
      max_wait = 0.0;
      slowlog_capacity = 3;
    }
  in
  (b, P.Service.create ~config ~type_level:b.P.Suite.type_level b.P.Suite.pag)

let drive_queries svc queries =
  Array.iteri
    (fun i v ->
      P.Service.submit svc
        ~now:(float_of_int i)
        ~respond:(fun _ -> ())
        (Proto.Query
           {
             id = i;
             var = Printf.sprintf "#%d" v;
             budget = None;
             deadline_ms = None;
             trace = None;
           });
      ignore (P.Service.pump ~force:true svc ~now:(float_of_int i)))
    queries

let test_service_exposition () =
  let b, svc = make_service () in
  drive_queries svc b.P.Suite.queries;
  let text = P.Service.metrics_text svc in
  (* The acceptance bar: at least one counter from each dark subsystem. *)
  check_contains "jmp store" "# TYPE parcfl_jmp_hits_total counter" text;
  check_contains "jmp misses" "parcfl_jmp_misses_total " text;
  check_contains "sched" "# TYPE parcfl_sched_groups_total counter" text;
  check_contains "early terms" "parcfl_sched_early_terminations_total " text;
  check_contains "cache evictions" "# TYPE parcfl_cache_evictions_total counter"
    text;
  check_contains "latency histogram" "# TYPE parcfl_svc_latency_us histogram"
    text;
  check_contains "latency inf bucket" "parcfl_svc_latency_us_bucket{le=\"+Inf\"}"
    text;
  check_contains "latency count" "parcfl_svc_latency_us_count " text;
  check_contains "batcher" "parcfl_svc_flushes_forced_total " text;
  check_contains "worker busy" "parcfl_worker_busy_us_total{worker=\"0\"}" text;
  (* Scrapes are deterministic between state changes (modulo uptime). *)
  Alcotest.(check string) "stable bytes" (strip_uptime text)
    (strip_uptime (P.Service.metrics_text svc));
  (* Every sched group the engine ran is visible. *)
  check_contains "group size histogram" "parcfl_sched_group_size_bucket" text;
  (* A real ~30-family scrape survives parse_families round trip. *)
  match E.parse_families text with
  | Error e -> Alcotest.failf "live scrape did not parse: %s" e
  | Ok fams ->
      Alcotest.(check string) "live scrape render fixpoint" text
        (E.render fams)

let test_service_slowlog () =
  let b, svc = make_service () in
  drive_queries svc b.P.Suite.queries;
  let sl = P.Service.slowlog svc in
  Alcotest.(check bool) "populated" true (P.Svc_slowlog.size sl > 0);
  Alcotest.(check bool) "bounded by capacity" true
    (P.Svc_slowlog.size sl <= 3);
  let worst = P.Svc_slowlog.worst sl in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.P.Svc_slowlog.sl_latency_us >= b.P.Svc_slowlog.sl_latency_us
        && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "slowest first" true (sorted worst);
  (* The protocol path returns the same list as JSON. *)
  let responses = ref [] in
  P.Service.submit svc ~now:99.0
    ~respond:(fun r -> responses := r :: !responses)
    (Proto.Slowlog { id = 7; limit = Some 2 });
  match !responses with
  | [ Proto.Slowlog_reply { id = 7; entries = P.Json.List l } ] ->
      Alcotest.(check bool) "limit honoured" true (List.length l <= 2)
  | _ -> Alcotest.fail "expected one slowlog reply"

let test_service_metrics_request () =
  let b, svc = make_service () in
  drive_queries svc b.P.Suite.queries;
  let responses = ref [] in
  P.Service.submit svc ~now:99.0
    ~respond:(fun r -> responses := r :: !responses)
    (Proto.Metrics 5);
  match !responses with
  | [ Proto.Metrics_reply { id = 5; body } ] ->
      Alcotest.(check string) "request equals scrape"
        (strip_uptime (P.Service.metrics_text svc))
        (strip_uptime body);
      (* The reply survives the single-line wire format. *)
      let line = Proto.response_to_string (List.hd !responses) in
      Alcotest.(check bool) "single line" true
        (not (String.contains line '\n'));
      (match Proto.response_of_string line with
      | Ok (Proto.Metrics_reply { body = body'; _ }) ->
          Alcotest.(check string) "round trip" body body'
      | _ -> Alcotest.fail "metrics reply did not round trip")
  | _ -> Alcotest.fail "expected one metrics reply"

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "sanitise and escape" `Quick test_sanitize_and_escape;
      Alcotest.test_case "render deterministic + sorted" `Quick
        test_render_deterministic_and_sorted;
      Alcotest.test_case "non-finite values" `Quick test_render_nonfinite;
      Alcotest.test_case "cumulative log2 buckets" `Quick
        test_cumulative_buckets;
      Alcotest.test_case "histogram rendering" `Quick test_histogram_render;
      Alcotest.test_case "parse round trip" `Quick test_parse_roundtrip;
      Alcotest.test_case "parse rejects malformed" `Quick
        test_parse_rejects_malformed;
      Alcotest.test_case "registry isolates collectors" `Quick test_registry;
      Alcotest.test_case "slowlog bound and order" `Quick
        test_slowlog_bound_and_order;
      Alcotest.test_case "percentile honesty" `Quick test_percentile_honesty;
      Alcotest.test_case "tracer dropped footer" `Quick
        test_tracer_dropped_footer;
      Alcotest.test_case "service exposition" `Quick test_service_exposition;
      Alcotest.test_case "service slowlog" `Quick test_service_slowlog;
      Alcotest.test_case "service metrics request" `Quick
        test_service_metrics_request;
    ] )
